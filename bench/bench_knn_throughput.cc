// Serving-throughput bench for the frozen CSR kNN index (the §5.2.2
// runtime-feasibility argument, taken to serving scale): classification
// queries/sec and latency percentiles for the brute-force scorer
// (candidate materialization + per-candidate sorted merges) vs the
// frozen-index scorer (term-at-a-time accumulation + bounded top-k heap),
// plus multi-thread scaling of the indexed path.
//
// Before timing anything it proves both paths produce bit-identical
// rankings on every probe for all four similarity measures. Emits a
// machine-readable BENCH_knn.json and exits nonzero when the indexed path
// fails to beat brute force — the perf-smoke gate in scripts/check.sh.
//
// Usage: bench_knn_throughput [--quick] [--out=BENCH_knn.json] [--threads=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "core/classifier.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "kb/data_bundle.h"
#include "kb/features.h"
#include "kb/frozen_index.h"
#include "kb/knowledge_base.h"
#include "obs/metrics.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Probe {
  const std::string* part_id;
  std::vector<int64_t> features;
};

struct LatencyStats {
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  size_t queries = 0;
};

/// Runs `passes` untimed-per-query sweeps of fn(probe_index) for the
/// throughput number (wall clock around whole sweeps only, so qps carries
/// no per-query timer overhead), then one instrumented sweep for the
/// latency percentiles. Both the brute and indexed paths are measured this
/// same way, so the comparison stays apples-to-apples.
template <typename Fn>
LatencyStats Measure(size_t passes, size_t num_probes, Fn&& fn) {
  LatencyStats stats;
  stats.queries = passes * num_probes;
  const auto begin = Clock::now();
  for (size_t pass = 0; pass < passes; ++pass) {
    for (size_t i = 0; i < num_probes; ++i) fn(i);
  }
  const auto end = Clock::now();
  const double seconds = std::chrono::duration<double>(end - begin).count();
  stats.qps = seconds > 0 ? static_cast<double>(stats.queries) / seconds : 0;

  std::vector<double> latencies;
  latencies.reserve(num_probes);
  for (size_t i = 0; i < num_probes; ++i) {
    const auto q0 = Clock::now();
    fn(i);
    const auto q1 = Clock::now();
    latencies.push_back(
        std::chrono::duration<double, std::micro>(q1 - q0).count());
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    stats.p50_us = latencies[latencies.size() / 2];
    stats.p99_us = latencies[latencies.size() * 99 / 100];
  }
  return stats;
}

struct ModelResult {
  const char* name;
  size_t nodes = 0;
  size_t parts = 0;
  size_t postings = 0;
  size_t probes = 0;
  /// Postings touched by one full indexed probe sweep (delta of the
  /// qatk_kb_postings_scanned_total counter; 0 under QATK_NO_METRICS).
  uint64_t postings_scanned = 0;
  double postings_per_query = 0;
  LatencyStats brute;
  LatencyStats indexed;
  double speedup = 0;
  std::vector<std::pair<size_t, double>> scaling;  // (threads, qps)
};

void WriteJson(const char* path, bool quick, unsigned cores, bool enforced,
               size_t bundles, size_t learnable,
               const std::vector<ModelResult>& results) {
  std::string text;
  qatk::benchutil::JsonWriter json(&text);
  json.BeginObject();
  json.Key("bench").Value("knn_throughput");
  // quick/cores up front: a stale single-core or quick-mode JSON must be
  // identifiable as such at a glance.
  json.Key("quick").Value(quick);
  json.Key("cores").Value(static_cast<uint64_t>(cores));
  json.Key("scaling_enforced").Value(enforced);
  json.Key("similarity").Value("jaccard");
  json.Key("max_nodes").Value(25);
  json.Key("corpus").BeginObject();
  json.Key("bundles").Value(static_cast<uint64_t>(bundles));
  json.Key("learnable").Value(static_cast<uint64_t>(learnable));
  json.EndObject();
  json.Key("results").BeginArray();
  for (const ModelResult& r : results) {
    json.BeginObject();
    json.Key("model").Value(r.name);
    json.Key("nodes").Value(static_cast<uint64_t>(r.nodes));
    json.Key("parts").Value(static_cast<uint64_t>(r.parts));
    json.Key("postings").Value(static_cast<uint64_t>(r.postings));
    json.Key("probes").Value(static_cast<uint64_t>(r.probes));
    json.Key("postings_scanned").Value(r.postings_scanned);
    json.Key("postings_per_query").Value(r.postings_per_query, 2);
    const auto emit_stats = [&json](const char* label,
                                    const LatencyStats& stats) {
      json.Key(label).BeginObject();
      json.Key("qps").Value(stats.qps, 1);
      json.Key("p50_us").Value(stats.p50_us, 2);
      json.Key("p99_us").Value(stats.p99_us, 2);
      json.EndObject();
    };
    emit_stats("brute", r.brute);
    emit_stats("indexed", r.indexed);
    json.Key("speedup").Value(r.speedup, 2);
    json.Key("scaling").BeginArray();
    for (const auto& [threads, qps] : r.scaling) {
      json.BeginObject();
      json.Key("threads").Value(static_cast<uint64_t>(threads));
      json.Key("qps").Value(qps, 1);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.Finish();
  if (qatk::benchutil::WriteFile(path, text)) {
    std::printf("\nmachine-readable results written to %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_knn.json";
  size_t max_threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      max_threads = static_cast<size_t>(std::atol(argv[i] + 10));
      if (max_threads == 0) max_threads = qatk::ThreadPool::DefaultThreads();
    }
  }

  std::printf("serving-throughput bench: frozen CSR index vs brute-force "
              "kNN scoring%s\n\n",
              quick ? " (--quick)" : "");

  qatk::datagen::DomainWorld world;
  qatk::datagen::OemCorpusGenerator generator(&world);
  qatk::kb::Corpus corpus = generator.Generate();
  std::vector<const qatk::kb::DataBundle*> bundles =
      corpus.LearnableBundles();
  QATK_CHECK(!bundles.empty());

  const qatk::core::RankedKnnClassifier classifier(
      {qatk::core::SimilarityMeasure::kJaccard, 25});
  const qatk::core::SimilarityMeasure all_measures[] = {
      qatk::core::SimilarityMeasure::kJaccard,
      qatk::core::SimilarityMeasure::kOverlap,
      qatk::core::SimilarityMeasure::kDice,
      qatk::core::SimilarityMeasure::kCosine,
  };

  struct ModelSpec {
    qatk::kb::FeatureModel model;
    const char* name;
  };
  const ModelSpec specs[] = {
      {qatk::kb::FeatureModel::kBagOfConcepts, "bag-of-concepts"},
      {qatk::kb::FeatureModel::kBagOfWords, "bag-of-words"},
  };

  std::vector<ModelResult> results;
  bool indexed_won = true;
  for (const ModelSpec& spec : specs) {
    // Train one knowledge base on the full learnable corpus (the serving
    // scenario: train once, then answer probes).
    qatk::kb::FeatureVocabulary vocabulary;
    qatk::kb::FeatureExtractor extractor(spec.model, &world.taxonomy(),
                                         &vocabulary);
    qatk::kb::KnowledgeBase knowledge;
    std::vector<Probe> probes;
    probes.reserve(bundles.size());
    for (const qatk::kb::DataBundle* bundle : bundles) {
      auto train = extractor.Extract(qatk::kb::ComposeDocument(
          *bundle, qatk::kb::kTrainSources, corpus));
      train.status().Abort();
      knowledge.AddInstance(bundle->part_id, bundle->error_code,
                            std::move(*train));
      auto probe = extractor.Extract(qatk::kb::ComposeDocument(
          *bundle, qatk::kb::kTestSources, corpus));
      probe.status().Abort();
      probes.push_back({&bundle->part_id, std::move(*probe)});
    }
    qatk::kb::FrozenIndex index = qatk::kb::FrozenIndex::Build(knowledge);

    ModelResult result;
    result.name = spec.name;
    result.nodes = index.num_nodes();
    result.parts = index.num_parts();
    result.postings = index.num_postings();
    result.probes = probes.size();

    // Equivalence gate before any timing: every probe, all four measures.
    qatk::kb::FrozenIndex::Scratch scratch;
    for (const Probe& probe : probes) {
      for (qatk::core::SimilarityMeasure measure : all_measures) {
        qatk::core::RankedKnnClassifier check({measure, 25});
        auto brute = check.Classify(knowledge, *probe.part_id,
                                    probe.features);
        auto indexed =
            check.Classify(index, *probe.part_id, probe.features, &scratch);
        if (brute != indexed) {
          std::fprintf(stderr,
                       "FATAL: indexed ranking diverged from brute force "
                       "(model=%s measure=%s part=%s)\n",
                       spec.name,
                       qatk::core::SimilarityMeasureToString(measure),
                       probe.part_id->c_str());
          return 2;
        }
      }
    }

    const size_t brute_passes = 1;
    const size_t indexed_passes = quick ? 4 : 16;
    size_t sink = 0;  // Defeats dead-code elimination of the scoring.

    // Index selectivity: postings touched by one untimed probe sweep,
    // read off the obs counter the scorer already maintains. Scanning is
    // deterministic per query, so one sweep gives the exact per-query
    // average (0 under QATK_NO_METRICS).
    qatk::obs::Counter* scanned_counter = qatk::obs::Registry::Global()
        .GetCounter("qatk_kb_postings_scanned_total");
    const uint64_t scanned_before = scanned_counter->Value();
    for (const Probe& probe : probes) {
      sink += classifier
                  .Classify(index, *probe.part_id, probe.features, &scratch)
                  .size();
    }
    result.postings_scanned = scanned_counter->Value() - scanned_before;
    result.postings_per_query =
        probes.empty() ? 0
                       : static_cast<double>(result.postings_scanned) /
                             static_cast<double>(probes.size());
    result.brute = Measure(brute_passes, probes.size(), [&](size_t i) {
      sink += classifier
                  .Classify(knowledge, *probes[i].part_id,
                            probes[i].features)
                  .size();
    });
    result.indexed = Measure(indexed_passes, probes.size(), [&](size_t i) {
      sink += classifier
                  .Classify(index, *probes[i].part_id, probes[i].features,
                            &scratch)
                  .size();
    });
    result.speedup = result.brute.qps > 0
                         ? result.indexed.qps / result.brute.qps
                         : 0;
    indexed_won = indexed_won && result.indexed.qps > result.brute.qps;

    // Multi-thread scaling of the indexed path: T workers sweep the whole
    // probe set concurrently, each with its own scratch accumulator.
    std::vector<size_t> thread_counts;
    for (size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
    if (thread_counts.back() != max_threads) {
      thread_counts.push_back(max_threads);
    }
    for (size_t t : thread_counts) {
      const size_t sweeps = t * (quick ? 2 : 8);
      std::vector<size_t> sweep_sinks(sweeps, 0);
      const auto begin = Clock::now();
      qatk::ParallelFor(t, sweeps, [&](size_t w) {
        qatk::kb::FrozenIndex::Scratch local;
        size_t local_sink = 0;
        for (const Probe& probe : probes) {
          local_sink += classifier
                            .Classify(index, *probe.part_id, probe.features,
                                      &local)
                            .size();
        }
        sweep_sinks[w] = local_sink;
      });
      const auto end = Clock::now();
      const double seconds =
          std::chrono::duration<double>(end - begin).count();
      result.scaling.push_back(
          {t, static_cast<double>(sweeps * probes.size()) / seconds});
      for (size_t s : sweep_sinks) sink += s;
    }
    if (sink == 0) std::printf("(empty rankings)\n");

    std::printf("%s: %zu nodes, %zu parts, %zu postings, %zu probes\n",
                spec.name, result.nodes, result.parts, result.postings,
                result.probes);
    std::printf("  postings scanned/query: %.2f (%.1f%% of the index)\n",
                result.postings_per_query,
                result.postings > 0
                    ? 100.0 * result.postings_per_query /
                          static_cast<double>(result.postings)
                    : 0.0);
    std::printf("  %-12s %12s %10s %10s\n", "path", "queries/s", "p50 us",
                "p99 us");
    std::printf("  %-12s %12.0f %10.2f %10.2f\n", "brute-force",
                result.brute.qps, result.brute.p50_us, result.brute.p99_us);
    std::printf("  %-12s %12.0f %10.2f %10.2f\n", "indexed",
                result.indexed.qps, result.indexed.p50_us,
                result.indexed.p99_us);
    std::printf("  single-thread speedup: %.2fx\n", result.speedup);
    std::printf("  indexed scaling:");
    for (const auto& [t, qps] : result.scaling) {
      std::printf("  %zut=%.0f q/s", t, qps);
    }
    std::printf("\n\n");
    results.push_back(std::move(result));
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const bool scaling_enforced = cores >= 4;
  WriteJson(out_path.c_str(), quick, cores, scaling_enforced,
            corpus.bundles.size(), bundles.size(), results);

  if (!indexed_won) {
    std::fprintf(stderr,
                 "FAIL: indexed scoring is slower than brute force\n");
    return 1;
  }
  // Scaling gate: the 1->4 table must be monotonically non-decreasing
  // (within a small jitter tolerance per step) and the 4-thread point must
  // not fall below single-thread — adding cores must never make us slower.
  // Only enforceable where 4 worker threads can actually run in parallel.
  bool scaling_ok = true;
  if (scaling_enforced) {
    constexpr double kStepTolerance = 0.95;
    for (const ModelResult& r : results) {
      double prev = 0, qps1 = 0, qps4 = 0;
      for (const auto& [t, qps] : r.scaling) {
        if (t > 4) continue;
        if (t == 1) qps1 = qps;
        if (t == 4) qps4 = qps;
        if (prev > 0 && qps < prev * kStepTolerance) {
          std::fprintf(stderr,
                       "FAIL: %s indexed qps falls at %zu threads (%.0f -> "
                       "%.0f q/s)\n",
                       r.name, t, prev, qps);
          scaling_ok = false;
        }
        prev = qps;
      }
      if (qps1 > 0 && qps4 > 0 && qps4 < qps1) {
        std::fprintf(stderr,
                     "FAIL: %s indexed 4-thread qps below 1-thread (%.0f < "
                     "%.0f q/s)\n",
                     r.name, qps4, qps1);
        scaling_ok = false;
      }
    }
  } else {
    std::fprintf(stderr,
                 "SKIPPED: thread-scaling gate (host has %u cores, needs "
                 ">= 4); the scaling table is informational only\n",
                 cores);
  }
  if (!scaling_ok) return 1;
  std::printf("OK: indexed path beats brute force on every model\n");
  return 0;
}
