// E1 — Figure 11: Experiment 1, text-based error-code prediction on all
// reports. Reproduces the accuracy@k series for bag-of-words and
// bag-of-concepts under Jaccard and Overlap similarity, plus the
// code-frequency and candidate-set baselines, with stratified 5-fold CV
// on the learnable bundles.
//
// Paper anchors (shape, not absolutes):
//   BoW+Jaccard  A@1 ~0.81, A@5 ~0.94
//   BoW+Overlap  A@1 ~0.76, A@5 ~0.93
//   BoC+Jaccard  A@1 ~0.56, A@5 ~0.85, A@10 ~0.92
//   BoC+Overlap  at or slightly below the code-frequency baseline at k=1
//   Code-frequency baseline  A@1 ~0.35, A@5 ~0.76, A@10 ~0.88
//   Candidate-set baselines  <1% at k=1, ~linear growth to ~0.83 at k=25

#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/csv.h"
#include "common/strutil.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "eval/evaluator.h"

int main(int argc, char** argv) {
  qatk::datagen::DomainWorld world;
  qatk::datagen::OemCorpusGenerator generator(&world);
  qatk::kb::Corpus corpus = generator.Generate();

  qatk::eval::Evaluator evaluator(&world.taxonomy(), &corpus);
  qatk::eval::EvalConfig config;
  config.probe_masks = {qatk::kb::kTestSources};
  auto report = evaluator.Run(config);
  report.status().Abort();

  std::printf("E1 / Figure 11 — Experiment 1: text-based error code "
              "prediction (all reports)\n\n");
  std::printf("%s\n", report->FormatTable(qatk::kb::kTestSources).c_str());

  // Machine-readable series next to the human-readable table.
  if (argc > 1) {
    std::ofstream csv_file(argv[1]);
    qatk::CsvWriter csv(&csv_file);
    std::vector<std::string> header = {"variant"};
    for (size_t k : report->ks) header.push_back("a@" + std::to_string(k));
    csv.WriteRow(header);
    for (const auto* curve : report->CurvesFor(qatk::kb::kTestSources)) {
      std::vector<std::string> row = {curve->name};
      for (double a : curve->accuracy_at) {
        row.push_back(qatk::FormatDouble(a, 4));
      }
      csv.WriteRow(row);
    }
    std::printf("series written to %s\n", argv[1]);
  }
  return 0;
}
