// E7 — reproduces the §3.2 data profile (in-text numbers):
//   7,500 data bundles; 31 part ids; 831 article codes; 1,271 distinct
//   error codes of which 718 are singletons -> 553 classes over 6,782
//   learnable bundles; max 146 codes per part id; 25 of 31 part ids with
//   instances of over 10 error codes; ~70 words and ~26 concept mentions
//   per combined text (§4.3).

#include <cstdio>
#include <map>
#include <set>

#include "datagen/oem.h"
#include "datagen/world.h"
#include "kb/features.h"

namespace {

using qatk::datagen::DomainWorld;
using qatk::datagen::OemConfig;
using qatk::datagen::OemCorpusGenerator;

void Row(const char* label, double paper, double measured) {
  std::printf("%-46s %10.1f %10.1f\n", label, paper, measured);
}

}  // namespace

int main() {
  DomainWorld world;
  OemCorpusGenerator generator(&world, OemConfig());
  qatk::kb::Corpus corpus = generator.Generate();

  std::set<std::string> parts;
  std::set<std::string> articles;
  std::map<std::string, size_t> code_counts;
  std::map<std::string, std::set<std::string>> codes_per_part;
  for (const qatk::kb::DataBundle& b : corpus.bundles) {
    parts.insert(b.part_id);
    articles.insert(b.article_code);
    ++code_counts[b.error_code];
    codes_per_part[b.part_id].insert(b.error_code);
  }
  size_t singletons = 0;
  for (const auto& [code, count] : code_counts) {
    if (count == 1) ++singletons;
  }
  size_t max_codes_per_part = 0;
  size_t parts_over_10 = 0;
  for (const auto& [part, codes] : codes_per_part) {
    max_codes_per_part = std::max(max_codes_per_part, codes.size());
    if (codes.size() > 10) ++parts_over_10;
  }
  std::vector<const qatk::kb::DataBundle*> learnable =
      corpus.LearnableBundles();
  std::set<std::string> classes;
  for (const qatk::kb::DataBundle* b : learnable) {
    classes.insert(b->error_code);
  }

  // Mention statistics over the combined (train-time) document.
  qatk::kb::FeatureVocabulary vocabulary;
  qatk::kb::FeatureExtractor words(qatk::kb::FeatureModel::kBagOfWords,
                                   nullptr, &vocabulary);
  qatk::kb::FeatureVocabulary unused;
  qatk::kb::FeatureExtractor concepts(
      qatk::kb::FeatureModel::kBagOfConcepts, &world.taxonomy(), &unused);
  double word_mentions = 0;
  double concept_mentions = 0;
  size_t sampled = 0;
  for (size_t i = 0; i < corpus.bundles.size(); i += 10) {
    std::string doc = qatk::kb::ComposeDocument(
        corpus.bundles[i], qatk::kb::kTrainSources, corpus);
    words.Extract(doc).status().Abort();
    word_mentions += static_cast<double>(words.last_mention_count());
    concepts.Extract(doc).status().Abort();
    concept_mentions += static_cast<double>(concepts.last_mention_count());
    ++sampled;
  }
  word_mentions /= static_cast<double>(sampled);
  concept_mentions /= static_cast<double>(sampled);

  std::printf("E7: corpus profile (paper §3.2 / §4.3 vs. generated)\n");
  std::printf("%-46s %10s %10s\n", "statistic", "paper", "measured");
  Row("data bundles", 7500, static_cast<double>(corpus.bundles.size()));
  Row("distinct part ids", 31, static_cast<double>(parts.size()));
  Row("distinct article codes", 831, static_cast<double>(articles.size()));
  Row("distinct error codes", 1271,
      static_cast<double>(code_counts.size()));
  Row("singleton error codes", 718, static_cast<double>(singletons));
  Row("classes after singleton removal", 553,
      static_cast<double>(classes.size()));
  Row("learnable bundles", 6782, static_cast<double>(learnable.size()));
  Row("max error codes for one part id", 146,
      static_cast<double>(max_codes_per_part));
  Row("part ids with >10 error codes", 25,
      static_cast<double>(parts_over_10));
  Row("avg word mentions per text", 70, word_mentions);
  Row("avg concept mentions per text", 26, concept_mentions);
  Row("taxonomy concepts with German synonyms",
      1800, static_cast<double>(world.taxonomy().CountWithLanguage(
                qatk::text::Language::kGerman)));
  Row("taxonomy concepts with English synonyms",
      1900, static_cast<double>(world.taxonomy().CountWithLanguage(
                qatk::text::Language::kEnglish)));
  return 0;
}
