// E5 — Figure 14 / §5.4: the QUEST data-comparison screen. The knowledge
// base built from internal OEM data classifies complaints from the public
// NHTSA/ODI database; the screen shows side-by-side pie charts of the top
// error codes per source ("X2 47% / B15 19% / CR2 18% / Other 16%" vs
// "X24I 41% / B15 25% / C2 4% / Other 30%" in the paper's mock numbers).
//
// Shape to reproduce: both sources yield a concentrated head of a few
// codes plus a large Other bucket; the distributions overlap on shared
// codes but differ visibly (different market, different failure mix); the
// bag-of-concepts model transfers to the foreign text type.

#include <cstdio>
#include <map>

#include "datagen/nhtsa.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "quest/comparison.h"
#include "quest/recommendation_service.h"

int main() {
  qatk::datagen::DomainWorld world;
  qatk::datagen::OemCorpusGenerator oem_generator(&world);
  qatk::kb::Corpus corpus = oem_generator.Generate();

  // Train the deployed (bag-of-concepts) service on the OEM data.
  qatk::quest::RecommendationService service(&world.taxonomy(), {});
  service.Train(corpus).Abort();

  // The comparison screen is scoped to one component (part id), like the
  // paper's example with a handful of dominant codes; we use the largest
  // part. Internal distribution: final error codes as assigned in the OEM
  // data.
  const std::string part_id = "P01";
  std::map<std::string, size_t> oem_counts;
  for (const qatk::kb::DataBundle& bundle : corpus.bundles) {
    if (bundle.part_id == part_id) ++oem_counts[bundle.error_code];
  }

  // Public distribution: classify every NHTSA complaint narrative with the
  // OEM knowledge base and count the top-1 code.
  qatk::datagen::NhtsaComplaintGenerator nhtsa_generator(&world);
  std::vector<qatk::datagen::NhtsaComplaint> complaints =
      nhtsa_generator.Generate();
  std::map<std::string, size_t> nhtsa_counts;
  std::map<std::string, size_t> nhtsa_truth_counts;
  size_t classified = 0;
  size_t top1_correct = 0;
  for (const qatk::datagen::NhtsaComplaint& complaint : complaints) {
    if (complaint.part_id != part_id) continue;
    ++nhtsa_truth_counts[complaint.latent_error_code];
    auto recommendation =
        service.RecommendForText(complaint.part_id, complaint.narrative);
    recommendation.status().Abort();
    if (recommendation->top.empty()) continue;
    ++nhtsa_counts[recommendation->top[0].error_code];
    ++classified;
    if (recommendation->top[0].error_code == complaint.latent_error_code) {
      ++top1_correct;
    }
  }

  qatk::quest::ComparisonScreen screen;
  screen.left = qatk::quest::Distribution::FromCounts(
      "Proprietary Data Set", oem_counts, 3);
  screen.right = qatk::quest::Distribution::FromCounts(
      "NHTSA Data (classified)", nhtsa_counts, 3);
  std::printf("E5 / Figure 14 — error distributions across data sources\n\n");
  std::printf("%s\n", screen.Render().c_str());
  std::printf("classified %zu complaints for part %s; top-1 agreement "
              "with the latent complaint cause: %.1f%%\n",
              classified, part_id.c_str(),
              100.0 * static_cast<double>(top1_correct) /
                  static_cast<double>(classified));

  // How close does the fully automatic classification get to the TRUE
  // complaint distribution? ("an approximate impression of the
  // distribution of similar errors can still be gained", §5.4)
  qatk::quest::ComparisonScreen truth_check;
  truth_check.left = qatk::quest::Distribution::FromCounts(
      "NHTSA true causes", nhtsa_truth_counts, 3);
  truth_check.right = screen.right;
  std::printf("\nfidelity of the automatic distribution (top-3 overlap "
              "score vs truth): %.2f\n",
              truth_check.OverlapScore());
  return 0;
}
