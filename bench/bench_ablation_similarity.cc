// A2 (ours) — similarity-measure and cutoff ablations. The paper built the
// classifier so that "the similarity measure, the choice of features ...
// and the method for deriving the class assignment ... can be adjusted"
// (§4.2) and names other measures as future work. This bench extends the
// Jaccard/Overlap comparison with Dice and Cosine, and sweeps the
// max-nodes cutoff around the paper's fixed 25 (§4.3).

#include <cstdio>

#include "common/strutil.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "eval/evaluator.h"

int main() {
  qatk::datagen::DomainWorld world;
  qatk::datagen::OemCorpusGenerator generator(&world);
  qatk::kb::Corpus corpus = generator.Generate();
  qatk::eval::Evaluator evaluator(&world.taxonomy(), &corpus);

  std::printf("A2 — similarity measures beyond the paper "
              "(bag-of-concepts and bag-of-words, all reports)\n\n");
  {
    qatk::eval::EvalConfig config;
    config.include_candidate_baseline = false;
    config.include_frequency_baseline = false;
    config.variants.clear();
    for (auto model : {qatk::kb::FeatureModel::kBagOfConcepts,
                       qatk::kb::FeatureModel::kBagOfWords,
                       qatk::kb::FeatureModel::kBagOfStems}) {
      for (auto sim : {qatk::core::SimilarityMeasure::kJaccard,
                       qatk::core::SimilarityMeasure::kOverlap,
                       qatk::core::SimilarityMeasure::kDice,
                       qatk::core::SimilarityMeasure::kCosine}) {
        config.variants.push_back({model, sim});
      }
    }
    auto report = evaluator.Run(config);
    report.status().Abort();
    std::printf("%s\n", report->FormatTable(qatk::kb::kTestSources).c_str());
  }

  std::printf("cutoff sweep — max scored nodes (paper fixes 25), "
              "bag-of-concepts + jaccard\n\n");
  std::printf("%-12s %8s %8s %8s\n", "max_nodes", "A@1", "A@10", "A@25");
  for (size_t max_nodes : {5u, 10u, 25u, 50u, 100u}) {
    qatk::eval::EvalConfig config;
    config.include_candidate_baseline = false;
    config.include_frequency_baseline = false;
    config.max_nodes = max_nodes;
    config.variants = {{qatk::kb::FeatureModel::kBagOfConcepts,
                        qatk::core::SimilarityMeasure::kJaccard}};
    auto report = evaluator.Run(config);
    report.status().Abort();
    auto curve = report->Find("bag-of-concepts + jaccard",
                              qatk::kb::kTestSources);
    curve.status().Abort();
    std::printf("%-12zu %8s %8s %8s\n", max_nodes,
                qatk::FormatDouble((*curve)->accuracy_at[0], 3).c_str(),
                qatk::FormatDouble((*curve)->accuracy_at[2], 3).c_str(),
                qatk::FormatDouble((*curve)->accuracy_at[5], 3).c_str());
  }
  return 0;
}
