// Crash-recovery torture benchmark, two layers deep: seeded storage
// schedules (src/storage/torture.h — WAL + rollback-journal recovery of
// the embedded database) and seeded service schedules
// (src/quest/service_torture.h — service-log + snapshot recovery of the
// QUEST recommendation service). Reports schedule throughput and the
// crash/torn mix per layer, and writes a machine-readable BENCH_crash.json
// with a `recovery_replay` gate: the gate fails (exit 1) on any recovery
// mismatch, and also when the service sweep replayed zero records overall
// — a sweep that never exercises replay proves nothing.
//
// Any mismatch prints the seed and the fault schedule, which replay the
// failure deterministically.
//
// Usage: bench_crash_recovery [--storage=N] [--service=N] [--seed=S]
//                             [--out=PATH]
//        bench_crash_recovery [num_schedules] [first_seed]   (legacy:
//        storage-only, no JSON artifact)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "quest/service_torture.h"
#include "storage/torture.h"

namespace qatk {
namespace {

struct LayerResult {
  int schedules = 0;
  int crashed = 0;
  int mismatches = 0;
  uint64_t replayed_records = 0;  // Service layer only.
  double seconds = 0.0;

  double PerSecond() const {
    return seconds > 0 ? schedules / seconds : 0.0;
  }
};

void PrintLayer(const char* name, const LayerResult& result) {
  std::printf("%s:\n", name);
  std::printf("  schedules:      %d\n", result.schedules);
  std::printf("  crashed:        %d (%.1f%%)\n", result.crashed,
              result.schedules > 0
                  ? 100.0 * result.crashed / result.schedules
                  : 0.0);
  std::printf("  mismatches:     %d\n", result.mismatches);
  if (result.replayed_records > 0) {
    std::printf("  replayed:       %llu records\n",
                static_cast<unsigned long long>(result.replayed_records));
  }
  std::printf("  wall time:      %.2f s\n", result.seconds);
  std::printf("  schedules/sec:  %.1f\n", result.PerSecond());
}

LayerResult RunStorage(int num_schedules, uint64_t first_seed) {
  LayerResult result;
  result.schedules = num_schedules;
  db::TortureOptions options;
  options.path = "/tmp/qatk_bench_crash_recovery.qdb";
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < num_schedules; ++i) {
    options.seed = first_seed + static_cast<uint64_t>(i);
    db::TortureReport report = db::RunCrashSchedule(options);
    if (!report.ok) {
      ++result.mismatches;
      std::fprintf(stderr, "FAIL storage seed=%llu: %s\n%s\n",
                   static_cast<unsigned long long>(options.seed),
                   report.detail.c_str(), report.schedule.c_str());
    }
    if (report.crashed) ++result.crashed;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

LayerResult RunService(int num_schedules, uint64_t first_seed) {
  LayerResult result;
  result.schedules = num_schedules;
  quest::ServiceTortureOptions options;
  options.data_dir = "/tmp/qatk_bench_crash_recovery_svc";
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < num_schedules; ++i) {
    options.seed = first_seed + static_cast<uint64_t>(i);
    quest::ServiceTortureReport report =
        quest::RunServiceCrashSchedule(options);
    if (!report.ok) {
      ++result.mismatches;
      std::fprintf(stderr, "FAIL service seed=%llu: %s\n%s\n",
                   static_cast<unsigned long long>(options.seed),
                   report.detail.c_str(), report.schedule.c_str());
    }
    if (report.crashed) ++result.crashed;
    result.replayed_records += report.replayed_records;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void WriteLayerJson(benchutil::JsonWriter* json, const LayerResult& result,
                    bool with_replay) {
  json->BeginObject();
  json->Key("schedules").Value(static_cast<int64_t>(result.schedules));
  json->Key("crashed").Value(static_cast<int64_t>(result.crashed));
  json->Key("mismatches").Value(static_cast<int64_t>(result.mismatches));
  if (with_replay) {
    json->Key("replayed_records").Value(result.replayed_records);
  }
  json->Key("wall_s").Value(result.seconds, 2);
  json->Key("schedules_per_s").Value(result.PerSecond(), 1);
  json->EndObject();
}

bool ParseFlag(const char* arg, const char* name, const char** out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Main(int argc, char** argv) {
  int storage_schedules = 1000;
  int service_schedules = 1000;
  uint64_t first_seed = 1;
  const char* out_path = nullptr;
  const bool legacy_positional = argc > 1 && argv[1][0] != '-';
  if (legacy_positional) {
    storage_schedules = std::atoi(argv[1]);
    service_schedules = 0;
    if (argc > 2) first_seed = std::strtoull(argv[2], nullptr, 10);
  } else {
    for (int i = 1; i < argc; ++i) {
      const char* value = nullptr;
      if (ParseFlag(argv[i], "--storage", &value)) {
        storage_schedules = std::atoi(value);
      } else if (ParseFlag(argv[i], "--service", &value)) {
        service_schedules = std::atoi(value);
      } else if (ParseFlag(argv[i], "--seed", &value)) {
        first_seed = std::strtoull(value, nullptr, 10);
      } else if (ParseFlag(argv[i], "--out", &value)) {
        out_path = value;
      } else {
        std::fprintf(stderr,
                     "usage: %s [--storage=N] [--service=N] [--seed=S] "
                     "[--out=PATH]\n",
                     argv[0]);
        return 2;
      }
    }
  }
  if (storage_schedules < 0 || service_schedules < 0 ||
      storage_schedules + service_schedules == 0) {
    std::fprintf(stderr, "nothing to run\n");
    return 2;
  }

  LayerResult storage;
  if (storage_schedules > 0) {
    storage = RunStorage(storage_schedules, first_seed);
    PrintLayer("storage", storage);
  }
  LayerResult service;
  if (service_schedules > 0) {
    service = RunService(service_schedules, first_seed);
    PrintLayer("service", service);
  }

  const int mismatches = storage.mismatches + service.mismatches;
  // The replay gate: mismatches are hard failures, and a service sweep
  // whose recoveries never replayed a single record would be vacuous.
  const bool replay_gate_ok =
      mismatches == 0 &&
      (service_schedules == 0 || service.replayed_records > 0);

  if (out_path != nullptr) {
    std::string doc;
    benchutil::JsonWriter json(&doc);
    json.BeginObject();
    json.Key("bench").Value("crash_recovery");
    if (storage_schedules > 0) {
      json.Key("storage");
      WriteLayerJson(&json, storage, /*with_replay=*/false);
    }
    if (service_schedules > 0) {
      json.Key("service");
      WriteLayerJson(&json, service, /*with_replay=*/true);
    }
    json.Key("gates").BeginObject();
    json.Key("recovery_replay").BeginObject();
    json.Key("pass").Value(replay_gate_ok);
    json.Key("mismatches").Value(static_cast<int64_t>(mismatches));
    json.Key("service_replayed_records").Value(service.replayed_records);
    json.EndObject();
    json.EndObject();
    json.EndObject();
    json.Finish();
    if (!benchutil::WriteFile(out_path, doc)) return 1;
    std::printf("json written to %s\n", out_path);
  }

  if (!replay_gate_ok) {
    std::fprintf(stderr,
                 "ABORT: recovery_replay gate failed (%d mismatch(es), "
                 "%llu service records replayed); replay with the printed "
                 "seed(s)\n",
                 mismatches,
                 static_cast<unsigned long long>(service.replayed_records));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace qatk

int main(int argc, char** argv) { return qatk::Main(argc, argv); }
