// Crash-recovery torture benchmark: runs a large batch of seeded crash
// schedules (see src/storage/torture.h) and reports throughput plus the
// crash/torn-write mix. Any recovery mismatch aborts with the seed and the
// fault schedule, which replay the failure deterministically.
//
// Usage: bench_crash_recovery [num_schedules] [first_seed]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "storage/torture.h"

namespace qatk::db {
namespace {

int Run(int num_schedules, uint64_t first_seed) {
  TortureOptions options;
  options.path = "/tmp/qatk_bench_crash_recovery.qdb";
  int crashed = 0;
  int mismatches = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < num_schedules; ++i) {
    options.seed = first_seed + static_cast<uint64_t>(i);
    TortureReport report = RunCrashSchedule(options);
    if (!report.ok) {
      ++mismatches;
      std::fprintf(stderr, "FAIL seed=%llu: %s\n%s\n",
                   static_cast<unsigned long long>(options.seed),
                   report.detail.c_str(), report.schedule.c_str());
    }
    if (report.crashed) ++crashed;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  double seconds = static_cast<double>(elapsed) / 1000.0;
  std::printf("schedules:      %d\n", num_schedules);
  std::printf("crashed:        %d (%.1f%%)\n", crashed,
              100.0 * crashed / num_schedules);
  std::printf("mismatches:     %d\n", mismatches);
  std::printf("wall time:      %.2f s\n", seconds);
  std::printf("schedules/sec:  %.1f\n",
              seconds > 0 ? num_schedules / seconds : 0.0);
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "ABORT: %d recovery mismatch(es); replay with the printed "
                 "seed(s)\n",
                 mismatches);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace qatk::db

int main(int argc, char** argv) {
  int num_schedules = argc > 1 ? std::atoi(argv[1]) : 1000;
  uint64_t first_seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  if (num_schedules <= 0) {
    std::fprintf(stderr, "usage: %s [num_schedules] [first_seed]\n", argv[0]);
    return 2;
  }
  return qatk::db::Run(num_schedules, first_seed);
}
