// A4 (ours) — cross-source robustness, quantifying the §5.4 claim: "the
// bag-of-words approach suffers in accuracy as soon as test and training
// data are different text types or in different languages, whereas the
// bag-of-concepts approach is in principle independent of the document
// language or other text features."
//
// Both models are trained on the OEM corpus and then classify (a) held-in
// OEM test documents and (b) NHTSA consumer complaints sharing the same
// latent error causes but written in a different register with none of
// the supplier cause vocabulary. Shape: BoW collapses across sources,
// BoC retains most of its accuracy.

#include <cstdio>

#include "common/strutil.h"
#include "core/classifier.h"
#include "datagen/nhtsa.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "kb/features.h"
#include "kb/knowledge_base.h"

namespace {

using qatk::kb::FeatureModel;

struct SourceAccuracy {
  double in_domain_a1 = 0;
  double in_domain_a10 = 0;
  double cross_a1 = 0;
  double cross_a10 = 0;
};

}  // namespace

int main() {
  qatk::datagen::DomainWorld world;
  qatk::datagen::OemCorpusGenerator oem_generator(&world);
  qatk::kb::Corpus corpus = oem_generator.Generate();
  qatk::datagen::NhtsaComplaintGenerator nhtsa_generator(&world);
  auto complaints = nhtsa_generator.Generate();
  auto learnable = corpus.LearnableBundles();

  std::printf("A4 — cross-source robustness (train: OEM, test: OEM vs "
              "NHTSA complaints)\n\n");
  std::printf("%-22s %10s %10s %12s %12s %10s\n", "model", "OEM A@1",
              "OEM A@10", "NHTSA A@1", "NHTSA A@10", "A@1 kept");

  for (FeatureModel model :
       {FeatureModel::kBagOfWords, FeatureModel::kBagOfConcepts}) {
    qatk::kb::FeatureVocabulary vocabulary;
    qatk::kb::FeatureExtractor extractor(model, &world.taxonomy(),
                                         &vocabulary);
    qatk::kb::KnowledgeBase knowledge;
    // Hold out every 5th bundle as the in-domain test set.
    for (size_t i = 0; i < learnable.size(); ++i) {
      if (i % 5 == 0) continue;
      auto features = extractor.Extract(qatk::kb::ComposeDocument(
          *learnable[i], qatk::kb::kTrainSources, corpus));
      features.status().Abort();
      knowledge.AddInstance(learnable[i]->part_id, learnable[i]->error_code,
                            features.MoveValueUnsafe());
    }
    extractor.set_frozen_vocabulary(true);
    qatk::core::RankedKnnClassifier classifier;

    SourceAccuracy acc;
    size_t in_n = 0;
    size_t in_hit1 = 0;
    size_t in_hit10 = 0;
    for (size_t i = 0; i < learnable.size(); i += 5) {
      auto features = extractor.Extract(qatk::kb::ComposeDocument(
          *learnable[i], qatk::kb::kTestSources, corpus));
      features.status().Abort();
      auto ranked = classifier.Classify(knowledge, learnable[i]->part_id,
                                        *features);
      size_t rank = qatk::core::RankOf(ranked, learnable[i]->error_code);
      ++in_n;
      if (rank == 1) ++in_hit1;
      if (rank >= 1 && rank <= 10) ++in_hit10;
    }
    acc.in_domain_a1 = static_cast<double>(in_hit1) / in_n;
    acc.in_domain_a10 = static_cast<double>(in_hit10) / in_n;

    size_t x_n = 0;
    size_t x_hit1 = 0;
    size_t x_hit10 = 0;
    for (const auto& complaint : complaints) {
      auto features = extractor.Extract(complaint.narrative);
      features.status().Abort();
      auto ranked =
          classifier.Classify(knowledge, complaint.part_id, *features);
      size_t rank = qatk::core::RankOf(ranked, complaint.latent_error_code);
      ++x_n;
      if (rank == 1) ++x_hit1;
      if (rank >= 1 && rank <= 10) ++x_hit10;
    }
    acc.cross_a1 = static_cast<double>(x_hit1) / x_n;
    acc.cross_a10 = static_cast<double>(x_hit10) / x_n;

    std::printf("%-22s %10s %10s %12s %12s %9s%%\n",
                qatk::kb::FeatureModelToString(model),
                qatk::FormatDouble(acc.in_domain_a1, 3).c_str(),
                qatk::FormatDouble(acc.in_domain_a10, 3).c_str(),
                qatk::FormatDouble(acc.cross_a1, 3).c_str(),
                qatk::FormatDouble(acc.cross_a10, 3).c_str(),
                qatk::FormatDouble(
                    100.0 * acc.cross_a1 / std::max(1e-9, acc.in_domain_a1),
                    0)
                    .c_str());
  }
  std::printf("\n(shape: bag-of-words retains far less of its in-domain "
              "accuracy on the foreign text type than bag-of-concepts)\n");
  return 0;
}
