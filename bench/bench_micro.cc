// A3 — google-benchmark microbenchmarks for the performance-critical
// kernels: tokenizer, German folding, trie longest-match, similarity
// kernels, knowledge-base candidate selection, and the QDB storage layer
// (B+-tree point ops, heap inserts, buffer-pool hits, SQL point queries).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/strutil.h"
#include "core/similarity.h"
#include "kb/knowledge_base.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/disk_manager.h"
#include "storage/heap_table.h"
#include "storage/sql.h"
#include "taxonomy/trie.h"
#include "text/language.h"
#include "text/tokenizer.h"

namespace {

using qatk::Rng;

const char* kSampleText =
    "Kleint says taht radio turns on and off by itself. Electiral smell, "
    "crackling sound. Lüfter funktioniert nicht, Kontakt defekt "
    "durchgeschmort. id test470 no clear results sending on to supplier.";

void BM_Tokenize(benchmark::State& state) {
  qatk::text::Tokenizer tokenizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(kSampleText));
  }
}
BENCHMARK(BM_Tokenize);

void BM_FoldGerman(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(qatk::FoldGerman("Größenänderung Lüfter"));
  }
}
BENCHMARK(BM_FoldGerman);

void BM_LanguageDetect(benchmark::State& state) {
  qatk::text::LanguageDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(kSampleText));
  }
}
BENCHMARK(BM_LanguageDetect);

void BM_TrieLongestMatch(benchmark::State& state) {
  qatk::tax::TokenTrie trie;
  Rng rng(1);
  std::vector<std::string> vocab;
  for (int i = 0; i < 2000; ++i) {
    vocab.push_back("word" + std::to_string(i));
  }
  for (int i = 0; i < 2000; ++i) {
    if (i % 5 == 0) {
      trie.Insert({vocab[i], vocab[(i + 1) % 2000]}, i);
    } else {
      trie.Insert({vocab[i]}, i);
    }
  }
  std::vector<std::string> tokens;
  for (int i = 0; i < 70; ++i) {
    tokens.push_back(vocab[rng.NextBounded(2000)]);
  }
  for (auto _ : state) {
    for (size_t pos = 0; pos < tokens.size(); ++pos) {
      benchmark::DoNotOptimize(trie.LongestMatch(tokens, pos));
    }
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_JaccardKernel(benchmark::State& state) {
  Rng rng(7);
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  for (int i = 0; i < 70; ++i) a.push_back(rng.NextBounded(5000));
  for (int i = 0; i < 60; ++i) b.push_back(rng.NextBounded(5000));
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        qatk::core::Similarity(qatk::core::SimilarityMeasure::kJaccard, a,
                               b));
  }
}
BENCHMARK(BM_JaccardKernel);

void BM_CandidateSelection(benchmark::State& state) {
  Rng rng(11);
  qatk::kb::KnowledgeBase knowledge;
  for (int i = 0; i < 2000; ++i) {
    std::vector<int64_t> features;
    for (int f = 0; f < 12; ++f) {
      features.push_back(static_cast<int64_t>(rng.NextBounded(600)));
    }
    std::sort(features.begin(), features.end());
    features.erase(std::unique(features.begin(), features.end()),
                   features.end());
    knowledge.AddInstance("P01", "E" + std::to_string(rng.NextBounded(80)),
                          std::move(features));
  }
  std::vector<int64_t> probe;
  for (int f = 0; f < 10; ++f) {
    probe.push_back(static_cast<int64_t>(rng.NextBounded(600)));
  }
  std::sort(probe.begin(), probe.end());
  probe.erase(std::unique(probe.begin(), probe.end()), probe.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(knowledge.SelectCandidates("P01", probe));
  }
}
BENCHMARK(BM_CandidateSelection);

void BM_BPlusTreeInsert(benchmark::State& state) {
  qatk::db::InMemoryDiskManager disk;
  qatk::db::BufferPool pool(&disk, 1024);
  auto root = qatk::db::BPlusTree::Create(&pool);
  qatk::db::BPlusTree tree(&pool, *root);
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i * 2654435761u % 1000000);
    benchmark::DoNotOptimize(
        tree.Insert(key, qatk::db::Rid{static_cast<uint32_t>(i), 0}));
    ++i;
  }
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeLookup(benchmark::State& state) {
  qatk::db::InMemoryDiskManager disk;
  qatk::db::BufferPool pool(&disk, 1024);
  auto root = qatk::db::BPlusTree::Create(&pool);
  qatk::db::BPlusTree tree(&pool, *root);
  for (int i = 0; i < 50000; ++i) {
    tree.Insert("key" + std::to_string(i),
                qatk::db::Rid{static_cast<uint32_t>(i), 0})
        .Abort();
  }
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get("key" + std::to_string(i % 50000)));
    ++i;
  }
}
BENCHMARK(BM_BPlusTreeLookup);

void BM_HeapInsert(benchmark::State& state) {
  qatk::db::InMemoryDiskManager disk;
  qatk::db::BufferPool pool(&disk, 256);
  auto first = qatk::db::HeapTable::Create(&pool);
  qatk::db::HeapTable table(&pool, *first);
  std::string record(120, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Insert(record));
  }
}
BENCHMARK(BM_HeapInsert);

void BM_SqlPointQuery(benchmark::State& state) {
  auto db = qatk::db::Database::OpenInMemory(1024);
  qatk::db::SqlSession session(db->get());
  session.Execute("CREATE TABLE kb (part STRING, code STRING, n INT)")
      .status()
      .Abort();
  session.Execute("CREATE INDEX kb_part ON kb (part)").status().Abort();
  for (int i = 0; i < 5000; ++i) {
    session
        .Execute("INSERT INTO kb VALUES ('P" + std::to_string(i % 31) +
                 "', 'E" + std::to_string(i) + "', " + std::to_string(i) +
                 ")")
        .status()
        .Abort();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Execute("SELECT code FROM kb WHERE part = 'P7' LIMIT 5"));
  }
}
BENCHMARK(BM_SqlPointQuery);

}  // namespace

BENCHMARK_MAIN();
