#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/csv.h"
#include "common/fault.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strutil.h"
#include "common/thread_pool.h"

namespace qatk {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.code(), StatusCode::kInvalid);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid: bad input");
}

TEST(StatusTest, AllFactoryPredicatesMatch) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

Status FailThrough() {
  QATK_RETURN_NOT_OK(Status::KeyError("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(FailThrough().IsKeyError());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::Invalid("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  QATK_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoubleIt(5), 10);
  EXPECT_TRUE(DoubleIt(-5).status().IsInvalid());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextZipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[0], 2000);  // Head rank dominates.
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkDecouplesStreams) {
  Rng a(31);
  Rng fork = a.Fork();
  // The fork must not replay the parent stream.
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(RngTest, GaussianMeanApproximatelyCorrect) {
  Rng rng(37);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StrUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  hello\tworld \n x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
  EXPECT_EQ(parts[2], "x");
}

TEST(StrUtilTest, JoinRoundTrip) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(Join(v, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, FoldGermanUmlautsAndSharpS) {
  EXPECT_EQ(FoldGerman("Lüfter"), "luefter");
  EXPECT_EQ(FoldGerman("GROSSE Straße"), "grosse strasse");
  EXPECT_EQ(FoldGerman("Ölwanne ÄNDERN"), "oelwanne aendern");
}

TEST(StrUtilTest, FoldGermanLeavesAsciiAlone) {
  EXPECT_EQ(FoldGerman("Brake Pad 12"), "brake pad 12");
}

TEST(StrUtilTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("motor", "moter"), 1u);
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, WriterQuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"plain", "with,comma", "with\"quote", "multi\nline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(CsvTest, RoundTrip) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"a", "b,c", "d\"e"});
  writer.WriteRow({"1", "", "3"});
  auto rows = ParseCsv(out.str());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], "b,c");
  EXPECT_EQ((*rows)[0][2], "d\"e");
  EXPECT_EQ((*rows)[1][1], "");
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  auto rows = ParseCsv("a,\"unterminated\n");
  EXPECT_TRUE(rows.status().IsInvalid());
}

TEST(CsvTest, ParseEmptyInput) {
  auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvTest, DetailedParseTracksRowStartLines) {
  auto parsed = ParseCsvDetailed("a,b\n\"multi\nline\nfield\",x\nc,d\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->rows.size(), 3u);
  ASSERT_EQ(parsed->row_lines.size(), 3u);
  EXPECT_EQ(parsed->row_lines[0], 1);
  EXPECT_EQ(parsed->row_lines[1], 2);  // Spans lines 2-4.
  EXPECT_EQ(parsed->row_lines[2], 5);
}

TEST(CsvTest, DetailedParseNamesUnterminatedQuoteLine) {
  Status st = ParseCsvDetailed("a,b\nc,\"cut off here").status();
  ASSERT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st;
}

// ---------------------------------------------------------------------------
// Status codes for fault handling
// ---------------------------------------------------------------------------

TEST(StatusTest, UnavailableAndDataLoss) {
  Status transient = Status::Unavailable("disk hiccup");
  EXPECT_TRUE(transient.IsUnavailable());
  EXPECT_FALSE(transient.ok());
  EXPECT_NE(transient.ToString().find("Unavailable"), std::string::npos);

  Status corrupt = Status::DataLoss("bad checksum");
  EXPECT_TRUE(corrupt.IsDataLoss());
  EXPECT_NE(corrupt.ToString().find("DataLoss"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

RetryPolicy FastRetry(int attempts) {
  return RetryPolicy(
      {.max_attempts = attempts, .base_backoff = std::chrono::microseconds(0)});
}

TEST(RetryPolicyTest, RetriesTransientUntilSuccess) {
  int calls = 0;
  Status st = FastRetry(3).Run([&]() -> Status {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, StopsAtAttemptBudget) {
  int calls = 0;
  Status st = FastRetry(3).Run([&]() -> Status {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, PermanentErrorsAreNotRetried) {
  int calls = 0;
  Status st = FastRetry(5).Run([&]() -> Status {
    ++calls;
    return Status::IOError("disk gone");
  });
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, WorksWithResultValues) {
  int calls = 0;
  Result<int> result = FastRetry(3).Run([&]() -> Result<int> {
    if (++calls < 2) return Status::Unavailable("flaky");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryPolicyTest, DeadlineExceededIsTransient) {
  Status deadline = Status::DeadlineExceeded("50ms budget spent queued");
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(deadline.ToString().find("DeadlineExceeded"), std::string::npos);
  EXPECT_TRUE(IsTransient(deadline));
  EXPECT_TRUE(IsTransient(Status::Unavailable("load")));
  EXPECT_FALSE(IsTransient(Status::Invalid("bad request")));
  EXPECT_FALSE(IsTransient(Status::DataLoss("bad checksum")));

  int calls = 0;
  Status st = FastRetry(3).Run([&]() -> Status {
    return ++calls < 2 ? Status::DeadlineExceeded("over budget")
                       : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);
}

TEST(RetryPolicyTest, BackoffScheduleIsDeterministicUnderFixedSeed) {
  RetryPolicy::Options options;
  options.max_attempts = 6;
  options.base_backoff = std::chrono::microseconds(100);
  options.jitter = 0.5;
  options.seed = 1234;
  RetryPolicy a(options);
  RetryPolicy b(options);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    // Same (options, seed) -> identical schedule, no hidden RNG state.
    EXPECT_EQ(a.BackoffDelay(attempt).count(),
              b.BackoffDelay(attempt).count())
        << "attempt " << attempt;
    // Bounded: base * 2^(n-1) <= delay < base * 2^(n-1) * (1 + jitter).
    const int64_t floor_us = 100LL << (attempt - 1);
    const int64_t ceil_us =
        static_cast<int64_t>(static_cast<double>(floor_us) * 1.5);
    EXPECT_GE(a.BackoffDelay(attempt).count(), floor_us);
    EXPECT_LE(a.BackoffDelay(attempt).count(), ceil_us);
  }
  // A different seed perturbs at least one delay in the schedule.
  options.seed = 99;
  RetryPolicy c(options);
  bool differs = false;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    differs = differs ||
              c.BackoffDelay(attempt).count() != a.BackoffDelay(attempt).count();
  }
  EXPECT_TRUE(differs);
  // jitter = 0 reproduces the original fixed exponential schedule.
  options.jitter = 0;
  RetryPolicy fixed(options);
  EXPECT_EQ(fixed.BackoffDelay(1).count(), 100);
  EXPECT_EQ(fixed.BackoffDelay(3).count(), 400);
}

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

TEST(LoggingTest, ThresholdGatesMessages) {
  const LogLevel saved = MinLogLevel();
  SetMinLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  SetMinLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
  // Disabled levels must not evaluate the streamed expressions.
  int evaluations = 0;
  QATK_LOG(ERROR) << "never emitted " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
  SetMinLogLevel(LogLevel::kInfo);
  EXPECT_TRUE(LogEnabled(LogLevel::kInfo));
  QATK_LOG(INFO) << "visible at info threshold: " << ++evaluations;
  EXPECT_EQ(evaluations, 1);
  SetMinLogLevel(saved);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, CountdownSelectsTheNthOperation) {
  FaultInjector fault;
  fault.AddFault({"io.op", 2, FaultKind::kTransient, 0.0});
  EXPECT_TRUE(fault.OnOp("io.op").status.ok());
  EXPECT_TRUE(fault.OnOp("io.op").status.ok());
  EXPECT_TRUE(fault.OnOp("io.op").status.IsUnavailable());
  // Fired faults are consumed.
  EXPECT_TRUE(fault.OnOp("io.op").status.ok());
  EXPECT_EQ(fault.ops_observed(), 4u);
}

TEST(FaultInjectorTest, WildcardMatchesEveryOp) {
  FaultInjector fault;
  fault.AddFault({"*", 1, FaultKind::kPermanent, 0.0});
  EXPECT_TRUE(fault.OnOp("disk.read").status.ok());
  EXPECT_TRUE(fault.OnOp("wal.append").status.IsIOError());
}

TEST(FaultInjectorTest, UnrelatedOpsDoNotDecrement) {
  FaultInjector fault;
  fault.AddFault({"disk.write", 0, FaultKind::kPermanent, 0.0});
  EXPECT_TRUE(fault.OnOp("disk.read").status.ok());
  EXPECT_TRUE(fault.OnOp("disk.sync").status.ok());
  EXPECT_TRUE(fault.OnOp("disk.write").status.IsIOError());
}

TEST(FaultInjectorTest, TornDecisionBoundsPrefix) {
  FaultInjector fault;
  fault.AddFault({"disk.write", 0, FaultKind::kTorn, 0.75});
  FaultInjector::Decision d = fault.OnOp("disk.write");
  EXPECT_TRUE(d.status.ok());
  EXPECT_TRUE(d.torn);
  EXPECT_EQ(d.TornBytes(4096), 3072u);
  EXPECT_LT(d.TornBytes(1), 1u);  // Always strictly short of a full write.
  EXPECT_TRUE(fault.crashed());
}

TEST(FaultInjectorTest, CrashIsStickyAcrossAllOps) {
  FaultInjector fault;
  fault.AddFault({"wal.append", 0, FaultKind::kCrash, 0.0});
  EXPECT_TRUE(fault.OnOp("wal.append").status.IsUnavailable());
  EXPECT_TRUE(fault.crashed());
  EXPECT_TRUE(fault.OnOp("disk.read").status.IsUnavailable());
  EXPECT_TRUE(fault.OnOp("anything.else").status.IsUnavailable());
}

TEST(FaultInjectorTest, DescribeListsTheOriginalSchedule) {
  FaultInjector fault({{"disk.write", 3, FaultKind::kTorn, 0.25},
                       {"disk.read", 1, FaultKind::kTransient, 0.0}});
  std::string schedule = fault.Describe();
  EXPECT_NE(schedule.find("disk.write"), std::string::npos);
  EXPECT_NE(schedule.find("disk.read"), std::string::npos);
  EXPECT_NE(schedule.find("torn"), std::string::npos);
  // The description survives fault consumption, for replayable reports.
  fault.OnOp("disk.read");
  fault.OnOp("disk.read");
  EXPECT_EQ(fault.Describe(), schedule);
}

TEST(FaultInjectorTest, OpCountsTallyPerOperation) {
  FaultInjector fault;
  fault.OnOp("disk.read");
  fault.OnOp("disk.read");
  fault.OnOp("wal.append");
  ASSERT_EQ(fault.op_counts().count("disk.read"), 1u);
  EXPECT_EQ(fault.op_counts().at("disk.read"), 2u);
  EXPECT_EQ(fault.op_counts().at("wal.append"), 1u);
  EXPECT_EQ(fault.ops_observed(), 3u);
}

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.store(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForTest, EachIndexRunsExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(4, kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(1, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  bool ran = false;
  ParallelFor(4, 0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PoolMemberDistributesAcrossWorkers) {
  ThreadPool pool(3);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, [&sum](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace qatk
