// Durability contract of RecommendationService::Open (DESIGN.md §13):
// ack-after-fsync logging, snapshot + replay recovery, idempotent replay
// in the checkpoint window, crash-tail tolerance for every service-log
// record type, and the seeded service-level crash torture.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "quest/recommendation_service.h"
#include "quest/service_log.h"
#include "quest/service_torture.h"

namespace qatk::quest {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WipeDataDir(const std::string& data_dir) {
  std::remove(ServiceLogPath(data_dir).c_str());
  std::remove(ServiceSnapshotPath(data_dir).c_str());
  std::remove((ServiceSnapshotPath(data_dir) + ".tmp").c_str());
}

RecommendationService::Options BagOfWordsOptions(FaultInjector* fault) {
  RecommendationService::Options options;
  options.model = kb::FeatureModel::kBagOfWords;  // No taxonomy needed.
  options.fault = fault;
  return options;
}

kb::DataBundle Bundle(const std::string& part, const std::string& code,
                      const std::string& mechanic,
                      const std::string& supplier) {
  kb::DataBundle bundle;
  bundle.reference_number = "ref-" + mechanic.substr(0, 4);
  bundle.article_code = "art-9";
  bundle.part_id = part;
  bundle.error_code = code;
  bundle.responsibility_code = "r1";
  bundle.mechanic_report = mechanic;
  bundle.supplier_report = supplier;
  bundle.final_oem_report = "final " + mechanic;
  return bundle;
}

kb::Corpus SmallCorpus() {
  kb::Corpus corpus;
  corpus.part_descriptions["P1"] = "front brake disc";
  corpus.part_descriptions["P2"] = "door lock actuator";
  corpus.error_descriptions["E1"] = "surface worn beyond limit";
  corpus.error_descriptions["E2"] = "hairline crack detected";
  corpus.error_descriptions["E3"] = "sensor reading drifts";
  corpus.bundles.push_back(
      Bundle("P1", "E1", "disc surface scored and worn", "wear confirmed"));
  corpus.bundles.push_back(
      Bundle("P1", "E1", "heavy wear on braking surface", "worn out"));
  corpus.bundles.push_back(
      Bundle("P1", "E2", "crack across the disc rim", "crack confirmed"));
  corpus.bundles.push_back(
      Bundle("P2", "E3", "lock sensor reports drift", "drift measured"));
  corpus.bundles.push_back(
      Bundle("P2", "E3", "actuator sensor drifting cold", "sensor drift"));
  return corpus;
}

void AppendDoubleBits(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out->append(buf);
}

/// Compact behavioural fingerprint (generation excluded); equal strings
/// mean the two services serve identically. Mirrors the richer one inside
/// service_torture.cc.
std::string Fingerprint(const RecommendationService& service) {
  auto state = service.Snapshot();
  std::string fp = service.trained() ? "T\n" : "U\n";
  for (const auto& [word, id] : state->vocabulary.Entries()) {
    fp += word + "=" + std::to_string(id) + ";";
  }
  fp += "\n";
  for (const kb::KnowledgeNode& node : state->knowledge.nodes()) {
    fp += node.part_id + "|" + node.error_code + "|";
    for (int64_t f : node.features) fp += std::to_string(f) + ",";
    fp += "|" + std::to_string(node.instance_count) + "\n";
  }
  for (const auto& [part, codes] : state->frequency.counts()) {
    (void)codes;
    fp += part + ":";
    for (const core::ScoredCode& scored : service.FullListForPart(part)) {
      fp += scored.error_code + "=";
      AppendDoubleBits(&fp, scored.score);
      fp += ",";
    }
    fp += "\n";
    if (service.trained()) {
      Result<RecommendationService::Recommendation> rec =
          service.RecommendForText(part, "worn crack sensor drift surface");
      if (rec.ok()) {
        for (const core::ScoredCode& scored : rec.ValueOrDie().top) {
          fp += scored.error_code + "=";
          AppendDoubleBits(&fp, scored.score);
          fp += ",";
        }
      } else {
        fp += "<" + rec.status().ToString() + ">";
      }
      fp += "\n";
    }
  }
  for (const auto& [key, value] : state->error_descriptions) {
    fp += key + "=" + value + ";";
  }
  for (const auto& [part, codes] : state->manual_codes) {
    fp += part + "->";
    for (const std::string& code : codes) fp += code + ",";
  }
  return fp;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Recovery round trips
// ---------------------------------------------------------------------------

TEST(ServiceDurabilityTest, MutationsSurviveReopen) {
  const std::string dir = TempPath("svc_roundtrip");
  WipeDataDir(dir);
  {
    auto service =
        RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
    ASSERT_TRUE(service.ok()) << service.status();
    RecommendationService* svc = service.ValueOrDie().get();
    ASSERT_TRUE(svc->Train(SmallCorpus()).ok());
    ASSERT_TRUE(
        svc->ConfirmAssignment(
               Bundle("P1", "", "fresh crack on disc", "crack seen"), "E2")
            .ok());
    ASSERT_TRUE(
        svc->DefineErrorCode("P2", "E9", "new actuator failure mode").ok());
    EXPECT_EQ(svc->durability().last_lsn, 3u);
    // Destroyed without Checkpoint: recovery must come from the log alone.
  }
  auto reopened =
      RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  RecommendationService* svc = reopened.ValueOrDie().get();
  EXPECT_TRUE(svc->trained());
  const RecommendationService::DurabilityStats stats = svc->durability();
  EXPECT_TRUE(stats.durable);
  EXPECT_FALSE(stats.recovered_snapshot);
  EXPECT_EQ(stats.replayed_records, 3u);
  EXPECT_EQ(stats.last_lsn, 3u);

  // Bit-identical to an uncrashed ephemeral service with the same history.
  RecommendationService reference(nullptr, BagOfWordsOptions(nullptr));
  ASSERT_TRUE(reference.Train(SmallCorpus()).ok());
  ASSERT_TRUE(reference
                  .ConfirmAssignment(
                      Bundle("P1", "", "fresh crack on disc", "crack seen"),
                      "E2")
                  .ok());
  ASSERT_TRUE(
      reference.DefineErrorCode("P2", "E9", "new actuator failure mode").ok());
  EXPECT_EQ(Fingerprint(*svc), Fingerprint(reference));
  auto described = svc->DescribeCode("E9");
  ASSERT_TRUE(described.ok());
  EXPECT_EQ(described.ValueOrDie(), "new actuator failure mode");
  WipeDataDir(dir);
}

TEST(ServiceDurabilityTest, CheckpointShortcutsReplay) {
  const std::string dir = TempPath("svc_ckpt");
  WipeDataDir(dir);
  std::string want;
  {
    auto service =
        RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
    ASSERT_TRUE(service.ok()) << service.status();
    RecommendationService* svc = service.ValueOrDie().get();
    ASSERT_TRUE(svc->Train(SmallCorpus()).ok());
    ASSERT_TRUE(svc->DefineErrorCode("P1", "E8", "rotor imbalance").ok());
    ASSERT_TRUE(svc->Checkpoint().ok());
    want = Fingerprint(*svc);
  }
  {
    auto log = ServiceLog::Open(ServiceLogPath(dir));
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(*log.ValueOrDie()->Empty()) << "checkpoint must truncate";
  }
  auto reopened =
      RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const RecommendationService::DurabilityStats stats =
      reopened.ValueOrDie()->durability();
  EXPECT_TRUE(stats.recovered_snapshot);
  EXPECT_EQ(stats.replayed_records, 0u);
  EXPECT_EQ(stats.last_lsn, 2u);
  EXPECT_EQ(Fingerprint(*reopened.ValueOrDie()), want);
  WipeDataDir(dir);
}

TEST(ServiceDurabilityTest, CheckpointOnEphemeralServiceIsInvalid) {
  RecommendationService service(nullptr, BagOfWordsOptions(nullptr));
  EXPECT_FALSE(service.durable());
  EXPECT_TRUE(service.Checkpoint().IsInvalid());
}

// Crash between the snapshot rename and the log truncate: the log still
// holds records the snapshot already covers. Replay must skip them by lsn
// — and a second reopen (double replay) must change nothing.
TEST(ServiceDurabilityTest, CheckpointWindowCrashReplaysIdempotently) {
  const std::string dir = TempPath("svc_ckpt_window");
  WipeDataDir(dir);
  std::string want;
  FaultInjector fault;
  fault.AddFault({"service.log.truncate", 0, FaultKind::kCrash, 0.0});
  {
    auto service =
        RecommendationService::Open(nullptr, BagOfWordsOptions(&fault), dir);
    ASSERT_TRUE(service.ok()) << service.status();
    RecommendationService* svc = service.ValueOrDie().get();
    ASSERT_TRUE(svc->Train(SmallCorpus()).ok());
    ASSERT_TRUE(
        svc->ConfirmAssignment(
               Bundle("P2", "", "drift worse when cold", "confirmed"), "E3")
            .ok());
    want = Fingerprint(*svc);
    Status ckpt = svc->Checkpoint();
    ASSERT_FALSE(ckpt.ok()) << "truncate crash must surface";
    ASSERT_TRUE(fault.crashed());
  }
  // The snapshot landed; the log was never truncated.
  {
    auto log = ServiceLog::Open(ServiceLogPath(dir));
    ASSERT_TRUE(log.ok());
    EXPECT_FALSE(*log.ValueOrDie()->Empty());
  }
  for (int reopen = 0; reopen < 2; ++reopen) {
    auto recovered =
        RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
    ASSERT_TRUE(recovered.ok()) << "reopen " << reopen << ": "
                                << recovered.status();
    const RecommendationService::DurabilityStats stats =
        recovered.ValueOrDie()->durability();
    EXPECT_TRUE(stats.recovered_snapshot);
    EXPECT_EQ(stats.replayed_records, 0u)
        << "snapshot-covered records must be skipped by lsn";
    EXPECT_EQ(stats.last_lsn, 2u);
    EXPECT_EQ(Fingerprint(*recovered.ValueOrDie()), want)
        << "reopen " << reopen;
  }
  WipeDataDir(dir);
}

TEST(ServiceDurabilityTest, TransientFsyncFailureLeavesNoTrace) {
  const std::string dir = TempPath("svc_fsync_fail");
  WipeDataDir(dir);
  FaultInjector fault;
  fault.AddFault({"service.log.fsync", 0, FaultKind::kTransient, 0.0});
  {
    auto service =
        RecommendationService::Open(nullptr, BagOfWordsOptions(&fault), dir);
    ASSERT_TRUE(service.ok()) << service.status();
    RecommendationService* svc = service.ValueOrDie().get();
    Status first = svc->Train(SmallCorpus());
    ASSERT_TRUE(first.IsUnavailable()) << first;
    EXPECT_FALSE(svc->trained()) << "failed append must not publish";
    EXPECT_EQ(svc->durability().last_lsn, 0u);
    // The injector consumed its one fault; the retry goes through.
    ASSERT_TRUE(svc->Train(SmallCorpus()).ok());
    EXPECT_EQ(svc->durability().last_lsn, 1u);
  }
  auto reopened =
      RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened.ValueOrDie()->durability().replayed_records, 1u)
      << "the un-acked first attempt must have been rolled back";
  EXPECT_TRUE(reopened.ValueOrDie()->trained());
  WipeDataDir(dir);
}

TEST(ServiceDurabilityTest, CorruptSnapshotIsDataLoss) {
  const std::string dir = TempPath("svc_snap_corrupt");
  WipeDataDir(dir);
  {
    auto service =
        RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(service.ValueOrDie()->Train(SmallCorpus()).ok());
    ASSERT_TRUE(service.ValueOrDie()->Checkpoint().ok());
  }
  // Flip one byte in the snapshot payload.
  const std::string snap_path = ServiceSnapshotPath(dir);
  std::string bytes = SlurpFile(snap_path);
  ASSERT_GT(bytes.size(), 32u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  WriteBytes(snap_path, bytes);
  auto snapshot = ReadSnapshot(snap_path);
  EXPECT_TRUE(snapshot.status().IsDataLoss()) << snapshot.status();
  auto reopened =
      RecommendationService::Open(nullptr, BagOfWordsOptions(nullptr), dir);
  EXPECT_TRUE(reopened.status().IsDataLoss())
      << "a corrupt snapshot must fail loudly, not silently retrain";
  WipeDataDir(dir);
}

TEST(ServiceDurabilityTest, MissingSnapshotIsKeyError) {
  EXPECT_TRUE(
      ReadSnapshot(TempPath("svc_no_such_snapshot")).status().IsKeyError());
}

// ---------------------------------------------------------------------------
// Crash-tail contract, per record type (mirrors storage_wal_test.cc)
// ---------------------------------------------------------------------------

Status AppendRecordOfType(ServiceLog* log, ServiceRecordType type,
                          uint64_t lsn) {
  switch (type) {
    case ServiceRecordType::kTrainManifest:
      return log->AppendTrain(lsn, SmallCorpus());
    case ServiceRecordType::kConfirmAssignment:
      return log->AppendConfirm(
          lsn, Bundle("P1", "", "torn tail probe", "probe"), "E1",
          /*ordinal=*/7);
    case ServiceRecordType::kDefineErrorCode:
      return log->AppendDefine(lsn, "P1", "E7", "torn tail code");
  }
  return Status::Internal("unreachable");
}

TEST(ServiceLogTest, TornTailAtEveryByteOffsetForEveryRecordType) {
  const ServiceRecordType kAllTypes[] = {
      ServiceRecordType::kTrainManifest,
      ServiceRecordType::kConfirmAssignment,
      ServiceRecordType::kDefineErrorCode,
  };
  for (ServiceRecordType type : kAllTypes) {
    const std::string path =
        TempPath("svc_log_torn_" +
                 std::to_string(static_cast<unsigned>(type)) + ".log");
    std::remove(path.c_str());
    {
      auto log = ServiceLog::Open(path);
      ASSERT_TRUE(log.ok());
      ASSERT_TRUE(log.ValueOrDie()->AppendDefine(1, "P1", "E5", "first").ok());
      ASSERT_TRUE(
          log.ValueOrDie()
              ->AppendConfirm(2, Bundle("P2", "", "second rec", "sup"), "E3",
                              /*ordinal=*/9)
              .ok());
    }
    const std::string prefix = SlurpFile(path);
    {
      auto log = ServiceLog::Open(path);
      ASSERT_TRUE(log.ok());
      ASSERT_TRUE(AppendRecordOfType(log.ValueOrDie().get(), type, 3).ok());
    }
    const std::string full = SlurpFile(path);
    ASSERT_GT(full.size(), prefix.size());
    // Cut the final frame at every byte: ReadAll must always return exactly
    // the two intact records — never an error, never a partial third.
    for (size_t cut = prefix.size(); cut < full.size(); ++cut) {
      WriteBytes(path, full.substr(0, cut));
      auto log = ServiceLog::Open(path);
      ASSERT_TRUE(log.ok());
      auto records = log.ValueOrDie()->ReadAll();
      ASSERT_TRUE(records.ok())
          << ServiceRecordTypeToString(type) << " cut at " << cut << ": "
          << records.status();
      ASSERT_EQ(records.ValueOrDie().size(), 2u)
          << ServiceRecordTypeToString(type) << " cut at " << cut;
      EXPECT_EQ(records.ValueOrDie()[0].lsn, 1u);
      EXPECT_EQ(records.ValueOrDie()[1].lsn, 2u);
    }
    // Sanity: untruncated, all three decode.
    WriteBytes(path, full);
    auto log = ServiceLog::Open(path);
    ASSERT_TRUE(log.ok());
    auto records = log.ValueOrDie()->ReadAll();
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records.ValueOrDie().size(), 3u);
    EXPECT_EQ(records.ValueOrDie()[2].type, type);
    EXPECT_EQ(records.ValueOrDie()[2].lsn, 3u);
    std::remove(path.c_str());
  }
}

TEST(ServiceLogTest, CorruptCrcCutsTailForEveryRecordType) {
  const ServiceRecordType kAllTypes[] = {
      ServiceRecordType::kTrainManifest,
      ServiceRecordType::kConfirmAssignment,
      ServiceRecordType::kDefineErrorCode,
  };
  for (ServiceRecordType type : kAllTypes) {
    const std::string path =
        TempPath("svc_log_crc_" +
                 std::to_string(static_cast<unsigned>(type)) + ".log");
    std::remove(path.c_str());
    {
      auto log = ServiceLog::Open(path);
      ASSERT_TRUE(log.ok());
      ASSERT_TRUE(log.ValueOrDie()->AppendDefine(1, "P3", "E4", "keep").ok());
      ASSERT_TRUE(AppendRecordOfType(log.ValueOrDie().get(), type, 2).ok());
    }
    // Flip a byte inside the final record's payload region.
    std::string bytes = SlurpFile(path);
    ASSERT_GT(bytes.size(), 16u);
    const size_t victim = bytes.size() - 12;  // Payload, before the CRC.
    bytes[victim] = static_cast<char>(bytes[victim] ^ 0xFF);
    WriteBytes(path, bytes);
    auto log = ServiceLog::Open(path);
    ASSERT_TRUE(log.ok());
    auto records = log.ValueOrDie()->ReadAll();
    ASSERT_TRUE(records.ok()) << ServiceRecordTypeToString(type);
    ASSERT_EQ(records.ValueOrDie().size(), 1u)
        << ServiceRecordTypeToString(type)
        << ": corrupt record and tail must be cut";
    EXPECT_EQ(records.ValueOrDie()[0].lsn, 1u);
    std::remove(path.c_str());
  }
}

TEST(ServiceLogTest, RecordsRoundTripAllFields) {
  const std::string path = TempPath("svc_log_roundtrip.log");
  std::remove(path.c_str());
  auto log = ServiceLog::Open(path);
  ASSERT_TRUE(log.ok());
  kb::Corpus corpus = SmallCorpus();
  ASSERT_TRUE(log.ValueOrDie()->AppendTrain(1, corpus).ok());
  kb::DataBundle bundle =
      Bundle("P2", "", "exact field check", "supplier text");
  bundle.initial_oem_report = "initial text";
  ASSERT_TRUE(
      log.ValueOrDie()->AppendConfirm(2, bundle, "E2", /*ordinal=*/41).ok());
  ASSERT_TRUE(log.ValueOrDie()->AppendDefine(3, "P9", "E42", "described").ok());
  auto records = log.ValueOrDie()->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.ValueOrDie().size(), 3u);
  const ServiceRecord& train = records.ValueOrDie()[0];
  EXPECT_EQ(train.type, ServiceRecordType::kTrainManifest);
  EXPECT_EQ(train.corpus.bundles.size(), corpus.bundles.size());
  EXPECT_EQ(train.corpus.part_descriptions, corpus.part_descriptions);
  EXPECT_EQ(train.corpus.error_descriptions, corpus.error_descriptions);
  EXPECT_EQ(train.corpus.bundles[0].mechanic_report,
            corpus.bundles[0].mechanic_report);
  const ServiceRecord& confirm = records.ValueOrDie()[1];
  EXPECT_EQ(confirm.type, ServiceRecordType::kConfirmAssignment);
  EXPECT_EQ(confirm.lsn, 2u);
  EXPECT_EQ(confirm.error_code, "E2");
  EXPECT_EQ(confirm.ordinal, 41u);
  EXPECT_EQ(confirm.bundle.part_id, "P2");
  EXPECT_EQ(confirm.bundle.initial_oem_report, "initial text");
  EXPECT_EQ(confirm.bundle.supplier_report, "supplier text");
  const ServiceRecord& define = records.ValueOrDie()[2];
  EXPECT_EQ(define.type, ServiceRecordType::kDefineErrorCode);
  EXPECT_EQ(define.part_id, "P9");
  EXPECT_EQ(define.code, "E42");
  EXPECT_EQ(define.description, "described");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Seeded service-level crash torture
// ---------------------------------------------------------------------------

TEST(ServiceCrashTortureTest, SeededSchedules) {
  // The full 1000-schedule sweep runs in scripts/check.sh's durability
  // stage under ASan+UBSan (via bench_crash_recovery); tier-1 keeps a
  // fast-but-meaningful slice.
  const uint64_t kSchedules = 250;
  ServiceTortureOptions options;
  options.data_dir = TempPath("svc_torture");
  uint64_t crashed = 0;
  uint64_t replayed = 0;
  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    options.seed = seed;
    ServiceTortureReport report = RunServiceCrashSchedule(options);
    ASSERT_TRUE(report.ok)
        << "seed " << seed << ": " << report.detail << "\nschedule:\n"
        << report.schedule;
    if (report.crashed) ++crashed;
    replayed += report.replayed_records;
  }
  EXPECT_GT(crashed, kSchedules / 4)
      << "most schedules should genuinely crash mid-workload";
  EXPECT_GT(replayed, 0u) << "recovery must actually replay records";
  WipeDataDir(options.data_dir);
}

}  // namespace
}  // namespace qatk::quest
