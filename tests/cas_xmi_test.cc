#include <gtest/gtest.h>

#include "cas/annotators.h"
#include "cas/cas.h"
#include "cas/xmi.h"
#include "taxonomy/concept_annotator.h"
#include "taxonomy/taxonomy.h"

namespace qatk::cas {
namespace {

Cas AnnotatedSample() {
  Cas cas("Lüfter defekt, fan broken.");
  Pipeline pipeline;
  pipeline.Add(std::make_unique<TokenizerAnnotator>())
      .Add(std::make_unique<LanguageAnnotator>())
      .Add(std::make_unique<StopwordAnnotator>());
  QATK_CHECK_OK(pipeline.Process(&cas));
  return cas;
}

TEST(CasXmiTest, RoundTripPreservesEverything) {
  Cas original = AnnotatedSample();
  std::string xml = CasToXml(original);
  auto loaded = CasFromXml(xml);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->document(), original.document());
  EXPECT_EQ(loaded->GetMeta(types::kMetaLanguage),
            original.GetMeta(types::kMetaLanguage));
  auto original_tokens = original.Select(types::kToken);
  auto loaded_tokens = loaded->Select(types::kToken);
  ASSERT_EQ(loaded_tokens.size(), original_tokens.size());
  for (size_t i = 0; i < original_tokens.size(); ++i) {
    EXPECT_EQ(loaded_tokens[i]->begin, original_tokens[i]->begin);
    EXPECT_EQ(loaded_tokens[i]->end, original_tokens[i]->end);
    EXPECT_EQ(loaded_tokens[i]->string_features,
              original_tokens[i]->string_features);
    EXPECT_EQ(loaded_tokens[i]->int_features,
              original_tokens[i]->int_features);
  }
}

TEST(CasXmiTest, RoundTripIsCanonical) {
  Cas original = AnnotatedSample();
  std::string once = CasToXml(original);
  auto loaded = CasFromXml(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(CasToXml(*loaded), once);
}

TEST(CasXmiTest, ConceptAnnotationsSurvive) {
  tax::Taxonomy taxonomy;
  tax::Concept fan;
  fan.id = 42;
  fan.category = tax::Category::kComponent;
  fan.label = "Fan";
  fan.synonyms[text::Language::kEnglish] = {"fan"};
  QATK_CHECK_OK(taxonomy.Add(std::move(fan)));

  Cas cas("the fan is broken");
  TokenizerAnnotator tokenizer;
  QATK_CHECK_OK(tokenizer.Process(&cas));
  tax::TrieConceptAnnotator annotator(taxonomy);
  QATK_CHECK_OK(annotator.Process(&cas));

  auto loaded = CasFromXml(CasToXml(cas));
  ASSERT_TRUE(loaded.ok());
  auto concepts = loaded->Select(types::kConcept);
  ASSERT_EQ(concepts.size(), 1u);
  EXPECT_EQ(concepts[0]->GetInt(types::kFeatureConceptId), 42);
  EXPECT_EQ(loaded->CoveredText(*concepts[0]), "fan");
}

TEST(CasXmiTest, WhitespaceEdgesPreserved) {
  Cas cas("  padded document  ");
  auto loaded = CasFromXml(CasToXml(cas));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->document(), "  padded document  ");
}

TEST(CasXmiTest, EmptyCas) {
  Cas cas("");
  auto loaded = CasFromXml(CasToXml(cas));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->document(), "");
  EXPECT_EQ(loaded->CountType(types::kToken), 0u);
}

TEST(CasXmiTest, RejectsMalformedInput) {
  EXPECT_TRUE(CasFromXml("<notcas/>").status().IsInvalid());
  EXPECT_TRUE(CasFromXml("<cas/>").status().IsInvalid());  // No sofa.
  EXPECT_TRUE(CasFromXml("<cas><sofa text='ab'/>"
                         "<annotation type='T' begin='0' end='99'/></cas>")
                  .status()
                  .IsInvalid())
      << "spans outside the sofa must be rejected";
  EXPECT_TRUE(CasFromXml("<cas><sofa text='ab'/><bogus/></cas>")
                  .status()
                  .IsInvalid());
}

TEST(CasXmiTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/cas_xmi_test.xml";
  Cas original = AnnotatedSample();
  ASSERT_TRUE(SaveCasFile(original, path).ok());
  auto loaded = LoadCasFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->document(), original.document());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qatk::cas
