#include <gtest/gtest.h>

#include <algorithm>

#include "storage/schema.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace qatk::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(static_cast<int64_t>(5)).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value("hi").type(), TypeId::kString);
}

TEST(ValueTest, CompareWithinType) {
  EXPECT_LT(Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2)));
  EXPECT_EQ(Value("abc"), Value("abc"));
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value(1.0), Value(1.5));
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value(), Value(static_cast<int64_t>(-100)));
  EXPECT_LT(Value(), Value(""));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(static_cast<int64_t>(-3)).ToString(), "-3");
  EXPECT_EQ(Value("x").ToString(), "x");
}

// Property: EncodeOrdered preserves Value ordering under memcmp.
class OrderedEncodingTest
    : public ::testing::TestWithParam<std::pair<Value, Value>> {};

TEST_P(OrderedEncodingTest, EncodingOrderMatchesValueOrder) {
  const auto& [a, b] = GetParam();
  std::string ea;
  std::string eb;
  a.EncodeOrdered(&ea);
  b.EncodeOrdered(&eb);
  int value_cmp = a.Compare(b);
  int enc_cmp = ea.compare(eb);
  if (value_cmp < 0) {
    EXPECT_LT(enc_cmp, 0);
  } else if (value_cmp == 0) {
    EXPECT_EQ(enc_cmp, 0);
  } else {
    EXPECT_GT(enc_cmp, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, OrderedEncodingTest,
    ::testing::Values(
        std::pair<Value, Value>(Value(static_cast<int64_t>(-5)),
                                Value(static_cast<int64_t>(3))),
        std::pair<Value, Value>(Value(static_cast<int64_t>(-5)),
                                Value(static_cast<int64_t>(-4))),
        std::pair<Value, Value>(Value(static_cast<int64_t>(0)),
                                Value(static_cast<int64_t>(0))),
        std::pair<Value, Value>(Value(INT64_MIN), Value(INT64_MAX)),
        std::pair<Value, Value>(Value(-1.5), Value(-1.4)),
        std::pair<Value, Value>(Value(-0.1), Value(0.1)),
        std::pair<Value, Value>(Value(1e300), Value(1e301)),
        std::pair<Value, Value>(Value("a"), Value("ab")),
        std::pair<Value, Value>(Value("ab"), Value("b")),
        std::pair<Value, Value>(Value(std::string("a\0b", 3)),
                                Value(std::string("a\0c", 3))),
        std::pair<Value, Value>(Value(std::string("a\0", 2)),
                                Value(std::string("a", 1))),
        std::pair<Value, Value>(Value(), Value(static_cast<int64_t>(1)))));

// Property: string encoding with embedded zeros round-trips ordering
// against concatenation attacks ("a" + separator vs "a\0...").
TEST(ValueTest, EncodedStringsDoNotCollideAcrossBoundaries) {
  Value a("ab");
  Value b("a");
  std::string ea;
  std::string eb;
  a.EncodeOrdered(&ea);
  b.EncodeOrdered(&eb);
  EXPECT_NE(ea, eb);
  EXPECT_FALSE(ea.substr(0, eb.size()) == eb && ea.size() > eb.size())
      << "encoded 'a' must not be a strict prefix of encoded 'ab'";
}

TEST(SchemaTest, ColumnLookup) {
  Schema schema({{"id", TypeId::kInt64}, {"name", TypeId::kString}});
  EXPECT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(*schema.ColumnIndex("name"), 1u);
  EXPECT_TRUE(schema.ColumnIndex("missing").status().IsKeyError());
  EXPECT_TRUE(schema.HasColumn("id"));
  EXPECT_FALSE(schema.HasColumn("nope"));
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", TypeId::kInt64}});
  Schema b({{"x", TypeId::kInt64}});
  Schema c({{"x", TypeId::kString}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, SerializeRoundTrip) {
  Schema schema({{"id", TypeId::kInt64},
                 {"score", TypeId::kDouble},
                 {"name", TypeId::kString},
                 {"note", TypeId::kString}});
  Tuple t({Value(static_cast<int64_t>(-42)), Value(3.25), Value("hello"),
           Value()});
  auto bytes = t.Serialize(schema);
  ASSERT_TRUE(bytes.ok());
  auto back = Tuple::Deserialize(schema, *bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TupleTest, SerializeRejectsArityMismatch) {
  Schema schema({{"id", TypeId::kInt64}});
  Tuple t({Value(static_cast<int64_t>(1)), Value("extra")});
  EXPECT_TRUE(t.Serialize(schema).status().IsInvalid());
}

TEST(TupleTest, SerializeRejectsTypeMismatch) {
  Schema schema({{"id", TypeId::kInt64}});
  Tuple t({Value("not an int")});
  EXPECT_TRUE(t.Serialize(schema).status().IsInvalid());
}

TEST(TupleTest, DeserializeRejectsTruncation) {
  Schema schema({{"name", TypeId::kString}});
  Tuple t({Value("hello world")});
  std::string bytes = *t.Serialize(schema);
  auto result = Tuple::Deserialize(schema, bytes.substr(0, bytes.size() - 3));
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(TupleTest, DeserializeRejectsTrailingBytes) {
  Schema schema({{"id", TypeId::kInt64}});
  Tuple t({Value(static_cast<int64_t>(1))});
  std::string bytes = *t.Serialize(schema) + "x";
  EXPECT_TRUE(Tuple::Deserialize(schema, bytes).status().IsInvalid());
}

TEST(TupleTest, EmbeddedNulBytesSurvive) {
  Schema schema({{"blob", TypeId::kString}});
  Tuple t({Value(std::string("a\0b\0", 4))});
  auto back = Tuple::Deserialize(schema, *t.Serialize(schema));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value(0).AsString().size(), 4u);
}

}  // namespace
}  // namespace qatk::db
