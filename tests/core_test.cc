#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/baselines.h"
#include "core/classifier.h"
#include "core/similarity.h"

namespace qatk::core {
namespace {

using V = std::vector<int64_t>;

// ---------------------------------------------------------------------------
// Similarity measures
// ---------------------------------------------------------------------------

TEST(SimilarityTest, IntersectionSize) {
  EXPECT_EQ(IntersectionSize({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(IntersectionSize({}, {1}), 0u);
  EXPECT_EQ(IntersectionSize({1, 5, 9}, {2, 6, 10}), 0u);
  EXPECT_EQ(IntersectionSize({1, 2}, {1, 2}), 2u);
}

TEST(SimilarityTest, JaccardPaperDefinition) {
  // |A∩B| / |A∪B|
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kJaccard, {1, 2, 3},
                              {2, 3, 4}),
                   2.0 / 4.0);
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kJaccard, {1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kJaccard, {1}, {2}), 0.0);
}

TEST(SimilarityTest, OverlapPaperDefinition) {
  // |A∩B| / min(|A|, |B|)
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kOverlap, {1, 2, 3},
                              {2, 3}),
                   2.0 / 2.0);
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kOverlap, {1, 2, 3, 4},
                              {3, 4, 5}),
                   2.0 / 3.0);
}

TEST(SimilarityTest, DiceAndCosine) {
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kDice, {1, 2}, {2, 3}),
                   2.0 * 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kCosine, {1, 2}, {2, 3}),
                   1.0 / 2.0);
}

TEST(SimilarityTest, EmptySetsAreZero) {
  for (auto measure :
       {SimilarityMeasure::kJaccard, SimilarityMeasure::kOverlap,
        SimilarityMeasure::kDice, SimilarityMeasure::kCosine}) {
    EXPECT_EQ(Similarity(measure, {}, {}), 0.0);
    EXPECT_EQ(Similarity(measure, {1}, {}), 0.0);
    EXPECT_EQ(Similarity(measure, {}, {1}), 0.0);
  }
}

TEST(SimilarityTest, NameRoundTrip) {
  for (auto measure :
       {SimilarityMeasure::kJaccard, SimilarityMeasure::kOverlap,
        SimilarityMeasure::kDice, SimilarityMeasure::kCosine}) {
    auto back = SimilarityMeasureFromString(SimilarityMeasureToString(measure));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, measure);
  }
  EXPECT_TRUE(SimilarityMeasureFromString("nope").status().IsInvalid());
}

// Property sweep: all measures are symmetric, bounded to [0,1], equal to 1
// on identical non-empty sets, and 0 on disjoint sets.
class SimilarityPropertyTest
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(SimilarityPropertyTest, SymmetricBoundedNormalized) {
  SimilarityMeasure measure = GetParam();
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    V a;
    V b;
    size_t na = rng.NextBounded(30);
    size_t nb = rng.NextBounded(30);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<int64_t>(rng.NextBounded(50)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<int64_t>(rng.NextBounded(50)));
    }
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());

    double ab = Similarity(measure, a, b);
    double ba = Similarity(measure, b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    if (!a.empty()) {
      EXPECT_DOUBLE_EQ(Similarity(measure, a, a), 1.0);
    }
    if (IntersectionSize(a, b) == 0) {
      EXPECT_DOUBLE_EQ(ab, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, SimilarityPropertyTest,
                         ::testing::Values(SimilarityMeasure::kJaccard,
                                           SimilarityMeasure::kOverlap,
                                           SimilarityMeasure::kDice,
                                           SimilarityMeasure::kCosine));

// ---------------------------------------------------------------------------
// RankedKnnClassifier
// ---------------------------------------------------------------------------

kb::KnowledgeBase ThreeCodeKb() {
  kb::KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2, 3, 4});
  knowledge.AddInstance("P1", "E2", {3, 4, 5, 6});
  knowledge.AddInstance("P1", "E3", {7, 8});
  return knowledge;
}

TEST(RankedKnnTest, RanksBySimilarity) {
  kb::KnowledgeBase knowledge = ThreeCodeKb();
  RankedKnnClassifier classifier;
  auto ranked = classifier.Classify(knowledge, "P1", {1, 2, 3});
  ASSERT_EQ(ranked.size(), 2u);  // E3 shares nothing -> not a candidate.
  EXPECT_EQ(ranked[0].error_code, "E1");
  EXPECT_GT(ranked[0].score, ranked[1].score);
  EXPECT_EQ(ranked[1].error_code, "E2");
}

TEST(RankedKnnTest, OutputsRankedListNotMajorityVote) {
  // Three E2 nodes vs one perfectly matching E1 node: majority vote would
  // say E2; the ranked list must put E1 first (§4.3's adaptation).
  kb::KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2, 3});
  knowledge.AddInstance("P1", "E2", {1, 9, 10});
  knowledge.AddInstance("P1", "E2", {2, 11, 12});
  knowledge.AddInstance("P1", "E2", {3, 13, 14});
  RankedKnnClassifier classifier;
  auto ranked = classifier.Classify(knowledge, "P1", {1, 2, 3});
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].error_code, "E1");
}

TEST(RankedKnnTest, DistinctCodesKeepBestNodeScore) {
  kb::KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2});      // J({1,2},{1,2}) = 1.
  knowledge.AddInstance("P1", "E1", {1, 5, 6, 7});  // Worse E1 node.
  RankedKnnClassifier classifier;
  auto ranked = classifier.Classify(knowledge, "P1", {1, 2});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_DOUBLE_EQ(ranked[0].score, 1.0);
}

TEST(RankedKnnTest, MaxNodesCutoffLimitsCodes) {
  kb::KnowledgeBase knowledge;
  for (int i = 0; i < 50; ++i) {
    knowledge.AddInstance("P1", "E" + std::to_string(i),
                          {1, 100 + i, 200 + i});
  }
  RankedKnnClassifier narrow({SimilarityMeasure::kJaccard, 5});
  auto ranked = narrow.Classify(knowledge, "P1", {1});
  EXPECT_EQ(ranked.size(), 5u) << "only the 5 best nodes are retrieved";
  RankedKnnClassifier wide({SimilarityMeasure::kJaccard, 25});
  EXPECT_EQ(wide.Classify(knowledge, "P1", {1}).size(), 25u);
}

TEST(RankedKnnTest, DeterministicTieBreaking) {
  kb::KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "Ea", {1, 10});
  knowledge.AddInstance("P1", "Eb", {1, 11});
  knowledge.AddInstance("P1", "Ec", {1, 12});
  RankedKnnClassifier classifier;
  auto first = classifier.Classify(knowledge, "P1", {1});
  auto second = classifier.Classify(knowledge, "P1", {1});
  EXPECT_EQ(first, second);
  // Arrival order breaks exact ties.
  EXPECT_EQ(first[0].error_code, "Ea");
}

TEST(RankedKnnTest, EmptyProbeYieldsNothing) {
  kb::KnowledgeBase knowledge = ThreeCodeKb();
  RankedKnnClassifier classifier;
  EXPECT_TRUE(classifier.Classify(knowledge, "P1", {}).empty());
}

TEST(RankedKnnTest, UnknownPartUsesAllNodes) {
  kb::KnowledgeBase knowledge = ThreeCodeKb();
  RankedKnnClassifier classifier;
  auto ranked = classifier.Classify(knowledge, "P-unknown", {7, 8});
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].error_code, "E3");
}

TEST(RankOfTest, OneBasedRankZeroWhenAbsent) {
  std::vector<ScoredCode> ranked = {{"E2", 0.9}, {"E7", 0.5}, {"E1", 0.1}};
  EXPECT_EQ(RankOf(ranked, "E2"), 1u);
  EXPECT_EQ(RankOf(ranked, "E1"), 3u);
  EXPECT_EQ(RankOf(ranked, "E9"), 0u);
  EXPECT_EQ(RankOf({}, "E1"), 0u);
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

TEST(CodeFrequencyBaselineTest, SortsByFrequencyPerPart) {
  CodeFrequencyBaseline baseline;
  for (int i = 0; i < 5; ++i) baseline.AddObservation("P1", "E1");
  for (int i = 0; i < 9; ++i) baseline.AddObservation("P1", "E2");
  baseline.AddObservation("P1", "E3");
  baseline.AddObservation("P2", "E9");

  auto ranked = baseline.Rank("P1");
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].error_code, "E2");
  EXPECT_DOUBLE_EQ(ranked[0].score, 9.0);
  EXPECT_EQ(ranked[1].error_code, "E1");
  EXPECT_EQ(ranked[2].error_code, "E3");
  EXPECT_TRUE(baseline.Rank("P9").empty());
}

TEST(CodeFrequencyBaselineTest, TiesBreakLexicographically) {
  CodeFrequencyBaseline baseline;
  baseline.AddObservation("P1", "Eb");
  baseline.AddObservation("P1", "Ea");
  auto ranked = baseline.Rank("P1");
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].error_code, "Ea");
}

TEST(CandidateSetBaselineTest, OrderIsArbitraryButDeterministic) {
  kb::KnowledgeBase knowledge;
  for (int i = 0; i < 20; ++i) {
    knowledge.AddInstance("P1", "E" + std::to_string(i), {1, 100 + i});
  }
  CandidateSetBaseline baseline;
  auto first = baseline.Rank(knowledge, "P1", {1});
  auto second = baseline.Rank(knowledge, "P1", {1});
  EXPECT_EQ(first.size(), 20u);
  EXPECT_EQ(first, second);
  for (const ScoredCode& code : first) {
    EXPECT_EQ(code.score, 0.0) << "unsorted baseline carries no scores";
  }
  // The order must not be insertion order (that would correlate with the
  // training distribution).
  bool is_insertion_order = true;
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i].error_code != "E" + std::to_string(i)) {
      is_insertion_order = false;
      break;
    }
  }
  EXPECT_FALSE(is_insertion_order);
}

TEST(CandidateSetBaselineTest, OnlyMatchingCandidates) {
  kb::KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1});
  knowledge.AddInstance("P1", "E2", {2});
  CandidateSetBaseline baseline;
  auto ranked = baseline.Rank(knowledge, "P1", {2});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].error_code, "E2");
}

}  // namespace
}  // namespace qatk::core
