// Regression tests for the lock-free reader path of RecommendationService
// (DESIGN.md §12): deterministic thread_local retirement, retrain
// invalidation of cached extractors, the zero-lock fast path, and a
// reader/writer stress that TSan can chew on (run via scripts/check.sh
// thread stage).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "datagen/oem.h"
#include "datagen/world.h"
#include "quest/recommendation_service.h"

namespace qatk::quest {
namespace {

datagen::WorldConfig SmallWorld() {
  datagen::WorldConfig config;
  config.num_parts = 6;
  config.num_article_codes = 40;
  config.num_error_codes = 80;
  config.max_codes_largest_part = 25;
  config.mid_part_min_codes = 8;
  config.mid_part_max_codes = 20;
  config.small_parts = 2;
  config.num_components = 80;
  config.num_symptoms = 70;
  config.num_locations = 20;
  config.num_solutions = 20;
  config.components_per_part = 6;
  return config;
}

bool SameRecommendation(const RecommendationService::Recommendation& a,
                        const RecommendationService::Recommendation& b) {
  if (a.truncated != b.truncated) return false;
  if (a.top.size() != b.top.size()) return false;
  for (size_t i = 0; i < a.top.size(); ++i) {
    if (a.top[i].error_code != b.top[i].error_code) return false;
    if (a.top[i].score != b.top[i].score) return false;  // Bit-exact.
  }
  return true;
}

class ServiceConcurrencyTest : public ::testing::Test {
 protected:
  ServiceConcurrencyTest() : world_(SmallWorld()) {
    datagen::OemConfig oem;
    oem.num_bundles = 600;
    corpus_a_ = datagen::OemCorpusGenerator(&world_, oem).Generate();
    // Same world (same part ids), different bundle count: a genuinely
    // different vocabulary and knowledge base after a retrain.
    oem.num_bundles = 350;
    corpus_b_ = datagen::OemCorpusGenerator(&world_, oem).Generate();
  }

  datagen::DomainWorld world_;
  kb::Corpus corpus_a_;
  kb::Corpus corpus_b_;
};

// The old implementation kept a global unordered_map<thread::id, state>
// that grew by one entry per thread that ever touched the service and
// never shrank (with thread-id reuse aliasing on top). The thread_local
// redesign must retire state with its thread: 200 short-lived reader
// threads may not leave 200 states behind.
TEST_F(ServiceConcurrencyTest, ShortLivedReaderThreadsRetireTheirState) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_a_).ok());

  const int64_t base = RecommendationService::LiveReaderStatesForTest();
  std::atomic<size_t> failures{0};
  constexpr size_t kThreads = 200;
  for (size_t i = 0; i < kThreads; ++i) {
    std::thread reader([&] {
      const kb::DataBundle& bundle =
          corpus_a_.bundles[i % corpus_a_.bundles.size()];
      if (!service.Recommend(bundle).ok()) failures.fetch_add(1);
    });
    reader.join();
  }
  EXPECT_EQ(failures.load(), 0u);
  // Every joined thread destroyed its thread_local state. (No slack: the
  // main thread made no queries between the baseline and here.)
  EXPECT_EQ(RecommendationService::LiveReaderStatesForTest(), base)
      << kThreads << " terminated reader threads leaked state";
}

// A reader thread that cached its extractor before a Retrain must not
// keep extracting with the old feature space: its next query has to
// produce exactly what a brand-new reader (fresh thread, no cache) sees.
TEST_F(ServiceConcurrencyTest, RetrainInvalidatesCachedReaderExtractor) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_a_).ok());

  const std::string part_id = "P01";
  std::string probe_text;
  for (const kb::DataBundle& bundle : corpus_a_.bundles) {
    if (bundle.part_id == part_id) {
      probe_text = bundle.mechanic_report;
      break;
    }
  }
  ASSERT_FALSE(probe_text.empty());

  // Populate this thread's reader cache against corpus A's vocabulary.
  ASSERT_TRUE(service.RecommendForText(part_id, probe_text).ok());

  ASSERT_TRUE(service.Retrain(corpus_b_).ok());

  auto cached = service.RecommendForText(part_id, probe_text);
  ASSERT_TRUE(cached.ok()) << cached.status();

  RecommendationService::Recommendation fresh;
  std::thread fresh_reader([&] {
    auto result = service.RecommendForText(part_id, probe_text);
    ASSERT_TRUE(result.ok()) << result.status();
    fresh = *result;
  });
  fresh_reader.join();

  EXPECT_TRUE(SameRecommendation(*cached, fresh))
      << "the pre-retrain reader cache served stale vocabulary";
}

// Code-level zero-lock assertion: once a thread has refreshed onto the
// current generation, further queries never take the slow path — the
// process-wide refresh counter must not move across N hot queries.
TEST_F(ServiceConcurrencyTest, SteadyStateQueriesNeverHitTheSlowPath) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_a_).ok());

  const kb::DataBundle& bundle = corpus_a_.bundles[0];
  ASSERT_TRUE(service.Recommend(bundle).ok());  // Warm this thread.

  const uint64_t refreshes = RecommendationService::ReaderRefreshesForTest();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(service.Recommend(bundle).ok());
  }
  EXPECT_EQ(RecommendationService::ReaderRefreshesForTest(), refreshes)
      << "the hot path fell off the lock-free fast path";
}

// Torn-state stress (the TSan target): 8 readers hammer a fixed probe
// while a writer flips the published snapshot between two trained worlds
// and folds in confirmations. Every answer must be bit-identical to the
// probe's answer under corpus A or under corpus B — any mixed
// index/vocabulary pairing would produce a third, torn ranking.
TEST_F(ServiceConcurrencyTest, ReadersNeverObserveTornSnapshots) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_a_).ok());

  const std::string probe_part = "P01";
  std::string probe_text;
  for (const kb::DataBundle& bundle : corpus_a_.bundles) {
    if (bundle.part_id == probe_part) {
      probe_text = bundle.mechanic_report;
      break;
    }
  }
  ASSERT_FALSE(probe_text.empty());

  // Reference answers under both snapshots. Confirmations during the
  // stress target a different part with disjoint text, so the probe
  // part's ranking under either vocabulary stays exactly one of these.
  auto ref_a = service.RecommendForText(probe_part, probe_text);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_FALSE(ref_a->top.empty());
  ASSERT_TRUE(service.Retrain(corpus_b_).ok());
  auto ref_b = service.RecommendForText(probe_part, probe_text);
  ASSERT_TRUE(ref_b.ok());
  ASSERT_TRUE(service.Retrain(corpus_a_).ok());

  constexpr size_t kReaders = 8;
  constexpr size_t kWriterIterations = 24;
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::atomic<size_t> torn{0};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto result = service.RecommendForText(probe_part, probe_text);
        if (!result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        if (!SameRecommendation(*result, *ref_a) &&
            !SameRecommendation(*result, *ref_b)) {
          torn.fetch_add(1);
        }
      }
    });
  }

  std::thread writer([&] {
    for (size_t i = 0; i < kWriterIterations; ++i) {
      if (!service.Retrain(i % 2 == 0 ? corpus_b_ : corpus_a_).ok()) {
        failures.fetch_add(1);
      }
      if (i % 4 == 0) {
        kb::DataBundle confirm;
        confirm.reference_number = "STRESS" + std::to_string(i);
        confirm.part_id = "P02";  // Never the probe part.
        confirm.mechanic_report =
            "stress confirmation iteration " + std::to_string(i);
        if (!service.ConfirmAssignment(confirm, "E_STRESS").ok()) {
          failures.fetch_add(1);
        }
      }
    }
    // Land on corpus A so the final assertion below has a known state.
    if (!service.Retrain(corpus_a_).ok()) failures.fetch_add(1);
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(torn.load(), 0u)
      << "a reader observed a torn index/vocabulary pairing";
  EXPECT_GT(reads.load(), kReaders)
      << "stress produced implausibly few reads";
  auto final_result = service.RecommendForText(probe_part, probe_text);
  ASSERT_TRUE(final_result.ok());
  EXPECT_TRUE(SameRecommendation(*final_result, *ref_a));
}

}  // namespace
}  // namespace qatk::quest
