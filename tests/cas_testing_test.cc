// Component test suites in the style the paper cites ([14], Ogren &
// Bethard): each Analysis Engine exercised in isolation through the
// AnnotatorTester harness, upstream dependencies declared explicitly.

#include <gtest/gtest.h>

#include "cas/annotators.h"
#include "cas/testing.h"
#include "taxonomy/concept_annotator.h"
#include "taxonomy/taxonomy.h"

namespace qatk::cas {
namespace {

using testing::AnnotatorTester;
using testing::CoveredTexts;
using testing::IntFeatures;
using testing::Spans;
using testing::StringFeatures;

TEST(AnnotatorTesterTest, TokenizerComponentSuite) {
  AnnotatorTester tester;
  auto cas = tester.Process(std::make_unique<TokenizerAnnotator>(),
                            "Lüfter defekt, durchgeschmort.");
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(CoveredTexts(*cas, types::kToken),
            (std::vector<std::string>{"Lüfter", "defekt", ",",
                                      "durchgeschmort", "."}));
  EXPECT_EQ(StringFeatures(*cas, types::kToken, types::kFeatureKind),
            (std::vector<std::string>{"word", "word", "punct", "word",
                                      "punct"}));
}

TEST(AnnotatorTesterTest, StopwordComponentSuite) {
  AnnotatorTester tester;
  tester.Before(std::make_unique<TokenizerAnnotator>());
  auto cas = tester.Process(std::make_unique<StopwordAnnotator>(),
                            "the fan is broken");
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(IntFeatures(*cas, types::kToken, types::kFeatureStopword),
            (std::vector<int64_t>{1, 0, 1, 0}));
}

TEST(AnnotatorTesterTest, StemmerNeedsLanguageUpstream) {
  AnnotatorTester tester;
  tester.Before(std::make_unique<TokenizerAnnotator>())
      .Before(std::make_unique<LanguageAnnotator>());
  auto cas = tester.Process(std::make_unique<StemmerAnnotator>(),
                            "die undichten Leitungen wurden geprueft");
  ASSERT_TRUE(cas.ok());
  auto stems = StringFeatures(*cas, types::kToken, types::kFeatureStem);
  ASSERT_EQ(stems.size(), 5u);
  EXPECT_EQ(stems[2], "leit");
}

TEST(AnnotatorTesterTest, ConceptAnnotatorComponentSuite) {
  tax::Taxonomy taxonomy;
  tax::Concept hose;
  hose.id = 7;
  hose.category = tax::Category::kComponent;
  hose.label = "BrakeHose";
  hose.synonyms[text::Language::kEnglish] = {"brake hose"};
  QATK_CHECK_OK(taxonomy.Add(std::move(hose)));

  AnnotatorTester tester;
  tester.Before(std::make_unique<TokenizerAnnotator>());
  auto cas = tester.Process(
      std::make_unique<tax::TrieConceptAnnotator>(taxonomy),
      "left brake hose leaking");
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(CoveredTexts(*cas, types::kConcept),
            std::vector<std::string>{"brake hose"});
  EXPECT_EQ(Spans(*cas, types::kConcept),
            (std::vector<std::pair<size_t, size_t>>{{5, 15}}));
}

TEST(AnnotatorTesterTest, FailurePropagates) {
  // An annotator that rejects its input: the harness surfaces the status.
  class FailingAnnotator final : public Annotator {
   public:
    std::string name() const override { return "Failing"; }
    Status Process(Cas*) override { return Status::Invalid("nope"); }
  };
  AnnotatorTester tester;
  auto cas = tester.Process(std::make_unique<FailingAnnotator>(), "x");
  EXPECT_TRUE(cas.status().IsInvalid());
}

TEST(AnnotatorTesterTest, HelpersOnEmptyCas) {
  AnnotatorTester tester;
  auto cas = tester.Process(std::make_unique<TokenizerAnnotator>(), "");
  ASSERT_TRUE(cas.ok());
  EXPECT_TRUE(CoveredTexts(*cas, types::kToken).empty());
  EXPECT_TRUE(Spans(*cas, types::kToken).empty());
}

}  // namespace
}  // namespace qatk::cas
