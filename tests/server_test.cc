// Loopback end-to-end tests for the epoll serving subsystem: protocol
// round trips over real sockets, pipelining, admission control, deadlines,
// graceful drain, idle/slow-client policing, and fault-injection schedules
// (EAGAIN storms, mid-frame disconnects, torn writes). Run under TSan by
// scripts/check.sh: the concurrent tests double as the data-race harness.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/retry.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "obs/metrics.h"
#include "quest/recommendation_service.h"
#include "quest/service_log.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace qatk::server {
namespace {

datagen::WorldConfig TinyWorld() {
  datagen::WorldConfig config;
  config.num_parts = 6;
  config.num_article_codes = 40;
  config.num_error_codes = 80;
  config.max_codes_largest_part = 25;
  config.mid_part_min_codes = 8;
  config.mid_part_max_codes = 20;
  config.small_parts = 2;
  config.num_components = 80;
  config.num_symptoms = 70;
  config.num_locations = 20;
  config.num_solutions = 20;
  config.components_per_part = 6;
  return config;
}

/// World + trained service shared by every test (training is the slow
/// part; the service is immutable-after-train and thread-safe to read).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new datagen::DomainWorld(TinyWorld());
    datagen::OemConfig oem;
    oem.num_bundles = 600;
    datagen::OemCorpusGenerator generator(world_, oem);
    corpus_ = new kb::Corpus(generator.Generate());
    service_ = new quest::RecommendationService(
        &world_->taxonomy(), quest::RecommendationService::Options{});
    ASSERT_TRUE(service_->Train(*corpus_).ok());
  }

  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
    delete world_;
    world_ = nullptr;
  }

  /// Starts a server on an ephemeral port and connects a client to it.
  void Start(Server::Options options = {}) {
    options.port = 0;
    server_ = std::make_unique<Server>(service_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  static datagen::DomainWorld* world_;
  static kb::Corpus* corpus_;
  static quest::RecommendationService* service_;

  std::unique_ptr<Server> server_;
  Client client_;
};

datagen::DomainWorld* ServerTest::world_ = nullptr;
kb::Corpus* ServerTest::corpus_ = nullptr;
quest::RecommendationService* ServerTest::service_ = nullptr;

TEST_F(ServerTest, HealthAndStats) {
  Start();
  auto health = client_.Call(1, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->ok()) << health->message;
  EXPECT_TRUE(health->result.GetBool("trained", false));
  EXPECT_FALSE(health->result.GetBool("draining", true));

  auto stats = client_.Call(2, "Stats", Json::Object());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->result.GetInt("requests", -1), 1);
  EXPECT_EQ(stats->result.GetInt("shed", -1), 0);
  EXPECT_EQ(stats->result.GetInt("drain_dropped", -1), 0);
  // Per-method breakdown: the Health call above must already be counted.
  const Json* methods = stats->result.Find("methods");
  ASSERT_NE(methods, nullptr);
  const Json* health_row = methods->Find("Health");
  ASSERT_NE(health_row, nullptr);
  EXPECT_GE(health_row->GetInt("count", -1), 1);
}

TEST_F(ServerTest, MetricsTextExposesServerSeries) {
#ifdef QATK_NO_METRICS
  GTEST_SKIP() << "metrics compiled out (QATK_NO_METRICS)";
#else
  Start();
  // A Recommend first, so its histogram has at least one sample.
  auto response = client_.Call(1, "Recommend",
                               BundleToParams(corpus_->bundles[0]));
  ASSERT_TRUE(response.ok()) << response.status();
  auto metrics = client_.Call(2, "MetricsText", Json::Object());
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  ASSERT_TRUE(metrics->ok()) << metrics->message;
  const std::string text = metrics->result.GetString("text");
  EXPECT_NE(text.find("# TYPE qatk_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("qatk_server_requests_total{method=\"Recommend\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("qatk_server_request_us_bucket{method=\"Recommend\",le="),
      std::string::npos);
  EXPECT_NE(text.find("qatk_server_request_us_count{method=\"Recommend\"}"),
            std::string::npos);
#endif
}

TEST_F(ServerTest, WireResponsesBitIdenticalToInProcess) {
  Start();
  size_t compared = 0;
  for (size_t i = 0; i < corpus_->bundles.size(); i += 11) {
    const kb::DataBundle& bundle = corpus_->bundles[i];
    auto wire = client_.Call(static_cast<int64_t>(i), "Recommend",
                             BundleToParams(bundle));
    ASSERT_TRUE(wire.ok()) << wire.status();
    auto direct = service_->Recommend(bundle);
    ASSERT_EQ(wire->ok(), direct.ok());
    if (direct.ok()) {
      // Scores cross the wire through %.17g text; the comparison is on
      // the serialized form, which is bit-exact iff the doubles are.
      EXPECT_EQ(wire->result.Dump(), RecommendationToJson(*direct).Dump())
          << "bundle " << i;
    }
    ++compared;
  }
  EXPECT_GT(compared, 50u);
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  Start();
  constexpr int kRequests = 32;
  for (int i = 0; i < kRequests; ++i) {
    Json params = Json::Object();
    params.Set("part_id", Json("P01"));
    ASSERT_TRUE(client_.Send(i, "FullListForPart", params).ok());
  }
  for (int i = 0; i < kRequests; ++i) {
    auto response = client_.Receive();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->id, i);  // Responses arrive in request order.
    EXPECT_TRUE(response->ok());
  }
}

TEST_F(ServerTest, ShedsBeyondMaxInFlight) {
  Server::Options options;
  options.max_in_flight = 0;  // Admit nothing: every request sheds.
  Start(options);
  auto response = client_.Call(1, "Recommend",
                               BundleToParams(corpus_->bundles[0]));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kUnavailable);
  EXPECT_NE(response->message.find("capacity"), std::string::npos);
  // Health/Stats bypass admission control (they cost nothing).
  auto health = client_.Call(2, "Health", Json::Object());
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->ok());
  EXPECT_GE(server_->stats().shed, 1u);
}

TEST_F(ServerTest, ExpiredDeadlineAnsweredWithoutExecuting) {
  Start();
  auto response = client_.Call(7, "Recommend",
                               BundleToParams(corpus_->bundles[0]),
                               /*deadline_ms=*/0);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server_->stats().deadline_exceeded, 1u);
  // A generous deadline passes untouched.
  auto fine = client_.Call(8, "Recommend",
                           BundleToParams(corpus_->bundles[0]),
                           /*deadline_ms=*/60000);
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine->ok()) << fine->message;
}

TEST_F(ServerTest, MalformedJsonAnsweredAndConnectionSurvives) {
  Start();
  std::string wire;
  AppendFrame("this is not json", &wire);
  ASSERT_TRUE(client_.SendRaw(wire).ok());
  auto error = client_.Receive();
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->code, StatusCode::kInvalid);
  // The framing was intact, so the connection keeps working.
  auto health = client_.Call(2, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->ok());
}

TEST_F(ServerTest, UnknownMethodAnswered) {
  Start();
  auto response = client_.Call(3, "Frobnicate", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kInvalid);
  EXPECT_NE(response->message.find("Frobnicate"), std::string::npos);
}

TEST_F(ServerTest, OversizedFramePrefixAnsweredThenClosed) {
  Start();
  // 16 MiB announcement against the 1 MiB default cap; no payload needed.
  const char prefix[] = {'\x01', '\x00', '\x00', '\x00'};
  ASSERT_TRUE(client_.SendRaw(std::string_view(prefix, 4)).ok());
  auto error = client_.Receive();
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->code, StatusCode::kInvalid);
  // Framing is unrecoverable: the server closes after the error.
  auto next = client_.Receive();
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsIOError()) << next.status();
}

TEST_F(ServerTest, IdleConnectionsSweptAfterTimeout) {
  Server::Options options;
  options.idle_timeout_ms = 100;
  Start(options);
  // Do nothing; the sweep closes us and a read sees EOF.
  auto response = client_.Receive();
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsIOError()) << response.status();
}

TEST_F(ServerTest, GracefulDrainAnswersEverythingReceived) {
  Start();
  constexpr int kRequests = 16;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(
        client_.Send(i, "Recommend",
                     BundleToParams(corpus_->bundles[i % 100])).ok());
  }
  // Send() returning only means the bytes left the client. The drain
  // contract covers requests the server has received, so wait for the
  // request counter before placing the cutoff.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->stats().requests <
             static_cast<uint64_t>(kRequests) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->RequestDrain();
  for (int i = 0; i < kRequests; ++i) {
    auto response = client_.Receive();
    ASSERT_TRUE(response.ok()) << "request " << i << ": "
                               << response.status();
    EXPECT_EQ(response->id, i);
    EXPECT_TRUE(response->ok()) << response->message;
  }
  // After the answers, the server closes the connection.
  auto eof = client_.Receive();
  EXPECT_FALSE(eof.ok());
  EXPECT_TRUE(server_->Wait().ok());
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.drain_dropped, 0u);
  EXPECT_EQ(stats.responses_ok, static_cast<uint64_t>(kRequests));
}

TEST_F(ServerTest, ForcedDrainAccountsDroppedResponsesExactlyOnce) {
  // A response force-closed at the drain timeout must count as dropped
  // and NOT also as answered: the regression here was drain_dropped and
  // responses_ok both counting the same request. The invariant checked
  // at the end makes the tallies mutually exclusive and exhaustive.
  Server::Options options;
  options.drain_timeout_ms = 150;
  options.port = 0;
  // No shedding: past max_in_flight the server answers with tiny error
  // responses, and those all fit in kernel socket buffers — making the
  // drain look clean. Full-size responses are what pile up unflushed.
  options.max_in_flight = 1u << 20;
  // Keep the slow-client cutoff out of the way: that path closes the
  // connection before the drain timeout can account for it.
  options.max_write_buffer = 64u << 20;
  server_ = std::make_unique<Server>(service_, options);
  ASSERT_TRUE(server_->Start().ok());

  // Raw socket with a tiny receive buffer, set before connect so the
  // advertised TCP window stays small: the server can flush only a few
  // responses into kernel buffers; the rest must still be queued
  // (unflushed) when the drain timeout fires.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Enough response volume that it cannot all hide in kernel socket
  // buffers (TCP auto-tunes the send buffer up to ~4 MiB): most responses
  // must still be queued app-side when the timeout fires. FullListForPart
  // is cheap to execute but returns the part's whole ranked code list
  // (~1 KiB), so 16384 of them is ~12 MiB of responses — well past the
  // sndbuf ceiling, well under the raised write-buffer cutoff.
  constexpr int kRequests = 16384;
  Json full_list_params = Json::Object();
  full_list_params.Set("part_id", Json("P01"));
  std::string batch;
  for (int i = 0; i < kRequests; ++i) {
    AppendFrame(EncodeRequest(i, "FullListForPart", full_list_params),
                &batch);
  }
  // Non-blocking push with retry: the server keeps reading while it
  // processes, so EAGAIN here is transient; a hard error ends the push
  // and the invariant is checked over whatever got through.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t sent_bytes = 0;
  while (sent_bytes < batch.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::send(fd, batch.data() + sent_bytes,
                             batch.size() - sent_bytes, MSG_DONTWAIT);
    if (n > 0) {
      sent_bytes += static_cast<size_t>(n);
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } else {
      break;
    }
  }
  ASSERT_GT(sent_bytes, 0u);

  // Let the server settle: the parsed-request counter must hold still
  // across two polls before the cutoff, so the drain sees a stable set.
  uint64_t last_requests = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const uint64_t now = server_->stats().requests;
    if (now > 0 && now == last_requests) break;
    last_requests = now;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

#ifndef QATK_NO_METRICS
  const uint64_t obs_dropped_before =
      obs::Registry::Global()
          .GetCounter("qatk_server_drain_dropped_total")
          ->Value();
#endif
  server_->RequestDrain();
  const Status drained = server_->Wait();
  const ServerStats stats = server_->stats();
  ::close(fd);

  // The client never read, so the timeout must have force-closed the
  // connection with responses still queued.
  EXPECT_GT(stats.drain_dropped, 0u);
  EXPECT_FALSE(drained.ok()) << "drain should report the dropped responses";
  // Mutually exclusive and exhaustive: every parsed request is answered
  // OK, answered with an error, or dropped — never two of those.
  EXPECT_EQ(stats.requests,
            stats.responses_ok + stats.responses_error + stats.drain_dropped);
#ifndef QATK_NO_METRICS
  const uint64_t obs_dropped_after =
      obs::Registry::Global()
          .GetCounter("qatk_server_drain_dropped_total")
          ->Value();
  EXPECT_EQ(obs_dropped_after - obs_dropped_before, stats.drain_dropped);
#endif
}

TEST_F(ServerTest, DrainRefusesNewConnections) {
  Start();
  server_->RequestDrain();
  EXPECT_TRUE(server_->Wait().ok());
  Client late;
  Status connected = late.Connect("127.0.0.1", server_->port());
  if (connected.ok()) {
    // The TCP handshake may have raced the close; the socket must be
    // dead either way.
    EXPECT_FALSE(late.Call(1, "Health", Json::Object()).ok());
  }
}

TEST_F(ServerTest, ConcurrentClientsAcrossTwoLoops) {
  Server::Options options;
  options.threads = 2;
  Start(options);
  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &failures] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(100);
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const kb::DataBundle& bundle =
            corpus_->bundles[(c * kPerClient + i) % corpus_->bundles.size()];
        auto response =
            client.Call(i, "Recommend", BundleToParams(bundle));
        if (!response.ok() || !response->ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.responses_ok, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.accepted, static_cast<uint64_t>(kClients) + 1);
}

TEST_F(ServerTest, LegacyAcceptModeStillServesAcrossLoops) {
  // reuse_port=false forces the loop-0 listener + inbox dealing path that
  // remains the fallback for kernels without SO_REUSEPORT; it must stay
  // fully functional and be visible in Health.
  Server::Options options;
  options.threads = 2;
  options.reuse_port = false;
  Start(options);
  auto health = client_.Call(1, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_FALSE(health->result.GetBool("reuse_port", true));

  constexpr int kClients = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &failures] {
      Client client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(100);
        return;
      }
      for (int i = 0; i < 10; ++i) {
        const kb::DataBundle& bundle =
            corpus_->bundles[(c * 10 + i) % corpus_->bundles.size()];
        auto response = client.Call(i, "Recommend", BundleToParams(bundle));
        if (!response.ok() || !response->ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, HealthReportsReusePortAcceptByDefault) {
  Server::Options options;
  options.threads = 2;
  Start(options);
  auto health = client_.Call(1, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();
  // Linux >= 3.9 everywhere we run; a kernel-level fallback would flip
  // this to false without failing the test elsewhere.
  EXPECT_TRUE(health->result.GetBool("reuse_port", false));
}

// ---------------------------------------------------------------------------
// Fault-injection schedules. Each test owns a fresh injector + server
// (threads=1 keeps "the Nth read" deterministic). The invariant under any
// schedule: the client observes either a complete response or a closed
// connection — never a half frame presented as success, and the server
// neither crashes nor wedges.
//
// The injector lives on the test-body stack while server_ belongs to the
// fixture, so each test must tear the server down (server_.reset() drains
// it, consulting the injector one last time) before the injector dies.

TEST_F(ServerTest, TransientReadFaultIsRetriedTransparently) {
  FaultInjector fault;
  // An EAGAIN storm: the next three reads fail transiently.
  fault.AddFault({"server.read", 0, FaultKind::kTransient, 0});
  fault.AddFault({"server.read", 0, FaultKind::kTransient, 0});
  fault.AddFault({"server.read", 0, FaultKind::kTransient, 0});
  Server::Options options;
  options.fault = &fault;
  Start(options);
  auto response = client_.Call(1, "Health", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok());
  EXPECT_GE(server_->stats().read_faults, 3u);
  server_.reset();
}

TEST_F(ServerTest, MidFrameDisconnectNeverAnswersHalfRequest) {
  FaultInjector fault;
  fault.AddFault({"server.read", 0, FaultKind::kTorn, 0.3});
  Server::Options options;
  options.fault = &fault;
  Start(options);
  ASSERT_TRUE(
      client_.Send(1, "Recommend", BundleToParams(corpus_->bundles[0]))
          .ok());
  // The server read a torn prefix and closed. Whatever we observe must
  // be a clean close, not a fabricated success.
  auto response = client_.Receive();
  if (response.ok()) {
    // A complete frame arrived before the fault hit: it must parse as a
    // full, well-formed response.
    EXPECT_EQ(response->id, 1);
  } else {
    EXPECT_TRUE(response.status().IsIOError()) << response.status();
  }
  EXPECT_FALSE(client_.Call(2, "Health", Json::Object()).ok());
  server_.reset();
}

TEST_F(ServerTest, TornWriteClosesMidFrameCleanly) {
  FaultInjector fault;
  fault.AddFault({"server.write", 0, FaultKind::kTorn, 0.5});
  Server::Options options;
  options.fault = &fault;
  Start(options);
  ASSERT_TRUE(client_.Send(1, "Health", Json::Object()).ok());
  // The response is torn on the way out; the client-side framing layer
  // must refuse to surface the partial payload.
  auto response = client_.Receive();
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsIOError()) << response.status();
  EXPECT_GE(server_->stats().write_faults, 1u);
  server_.reset();
}

TEST_F(ServerTest, PermanentReadFaultClosesConnection) {
  FaultInjector fault;
  fault.AddFault({"server.read", 0, FaultKind::kPermanent, 0});
  Server::Options options;
  options.fault = &fault;
  Start(options);
  ASSERT_TRUE(client_.Send(1, "Health", Json::Object()).ok());
  auto response = client_.Receive();
  EXPECT_FALSE(response.ok());
  // The server survives to serve new connections.
  Client again;
  ASSERT_TRUE(again.Connect("127.0.0.1", server_->port()).ok());
  auto health = again.Call(1, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->ok());
  server_.reset();
}

TEST_F(ServerTest, ClientRetriesThroughShedding) {
  // Deliberately shedding server: one admission slot, a tiny send buffer
  // so a pipelining-but-not-reading hog client pins that slot with its
  // unflushed responses. Every other request sheds with kUnavailable
  // until the hog goes away — exactly the condition CallWithRetry's
  // jittered exponential backoff is for.
  Server::Options options;
  options.max_in_flight = 1;
  options.sndbuf_bytes = 4096;
  options.max_write_buffer = 64u << 20;  // Keep slow-client cutoff away.
  Start(options);

  Client hog;
  ASSERT_TRUE(
      hog.Connect("127.0.0.1", server_->port(), /*timeout_ms=*/5000,
                  /*rcvbuf_bytes=*/4096)
          .ok());
  Json params = Json::Object();
  params.Set("part_id", Json("P01"));
  // The hog keeps pipelining until told to stop. Early admitted responses
  // sit near the front of the write queue and still flush through the
  // shrunken buffers; with a continuous stream, an admitted response
  // eventually lands beyond everything the kernel will ever accept from a
  // non-reading peer — and from then on the slot is pinned permanently
  // (only CloseConn can release it).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::atomic<bool> stop_hog{false};
  std::atomic<int> hog_sent{0};
  std::thread hog_sender([&] {
    int i = 0;
    while (!stop_hog.load(std::memory_order_acquire)) {
      if (!hog.Send(i, "FullListForPart", params).ok()) break;
      hog_sent.store(++i, std::memory_order_release);
      if (i % 16 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  // The pin is reached when the executed-request tally freezes while the
  // shed tally still moves: no admissions happened across two polls, so
  // the one slot stayed held the whole time.
  uint64_t last_ok = ~0ull;
  int stable_polls = 0;
  while (stable_polls < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const ServerStats stats = server_->stats();
    if (stats.responses_ok == last_ok && stats.shed > 0) {
      ++stable_polls;
    } else {
      stable_polls = 0;
      last_ok = stats.responses_ok;
    }
  }
  stop_hog.store(true, std::memory_order_release);
  hog_sender.join();
  ASSERT_GE(stable_polls, 2) << "hog failed to pin the slot";
  // Drain the parser: once every sent hog request has been parsed (each
  // now shedding against the pinned slot), the shed counter only moves
  // for the retrying client below.
  while (server_->stats().requests <
             static_cast<uint64_t>(hog_sent.load()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server_->stats().requests,
            static_cast<uint64_t>(hog_sent.load()));
  const uint64_t baseline_shed = server_->stats().shed;
  ASSERT_GT(baseline_shed, 0u);

  RetryPolicy::Options retry;
  retry.max_attempts = 200;
  retry.base_backoff = std::chrono::microseconds(500);
  retry.jitter = 0.5;
  retry.seed = 42;
  client_.set_retry_policy(RetryPolicy(retry));

  // Any shed beyond the baseline is the retrying client's (the hog sent
  // everything it ever will): only then is the hog drained away, so the
  // client must observe at least one shed attempt before succeeding.
  std::thread unblocker([&] {
    while (server_->stats().shed <= baseline_shed &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    hog.Close();
  });
  int attempts = 0;
  auto response =
      client_.CallWithRetry(999, "FullListForPart", params,
                            /*deadline_ms=*/-1, &attempts);
  unblocker.join();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok()) << response->message;
  EXPECT_GT(attempts, 1) << "the first attempt must have been shed";
  EXPECT_LT(attempts, retry.max_attempts)
      << "success must come from the freed slot, not budget exhaustion";
}

TEST_F(ServerTest, DrainPersistsAcknowledgedConfirms) {
  // A durable service behind the server: every ConfirmAssignment answered
  // OK over the wire must still exist after the data dir is reopened —
  // the ack happened only after the service-log fsync, and the graceful
  // drain must not lose any of it.
  const std::string dir = ::testing::TempDir() + "/server_drain_durable";
  std::remove(quest::ServiceLogPath(dir).c_str());
  std::remove(quest::ServiceSnapshotPath(dir).c_str());
  auto durable = quest::RecommendationService::Open(
      &world_->taxonomy(), quest::RecommendationService::Options{}, dir);
  ASSERT_TRUE(durable.ok()) << durable.status();
  ASSERT_TRUE(durable.ValueOrDie()->Train(*corpus_).ok());

  Server::Options options;
  options.port = 0;
  server_ = std::make_unique<Server>(durable.ValueOrDie().get(), options);
  ASSERT_TRUE(server_->Start().ok());
  ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());

  auto health = client_.Call(0, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->result.GetBool("durable", false));

  // A few synchronous confirms, then a pipelined burst that the drain cuts
  // into: whatever subset comes back OK is the acknowledged set.
  constexpr int kSyncConfirms = 3;
  constexpr int kPipelined = 5;
  uint64_t acked = 0;
  for (int i = 0; i < kSyncConfirms; ++i) {
    const kb::DataBundle& bundle = corpus_->bundles[i];
    Json params = BundleToParams(bundle);
    params.Set("error_code", Json(bundle.error_code));
    auto response = client_.Call(i + 1, "ConfirmAssignment", params);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->ok()) << response->message;
    ++acked;
  }
  for (int i = 0; i < kPipelined; ++i) {
    const kb::DataBundle& bundle = corpus_->bundles[kSyncConfirms + i];
    Json params = BundleToParams(bundle);
    params.Set("error_code", Json(bundle.error_code));
    ASSERT_TRUE(
        client_.Send(100 + i, "ConfirmAssignment", params).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->stats().requests <
             static_cast<uint64_t>(1 + kSyncConfirms + kPipelined) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->RequestDrain();
  for (int i = 0; i < kPipelined; ++i) {
    auto response = client_.Receive();
    ASSERT_TRUE(response.ok()) << "pipelined confirm " << i << ": "
                               << response.status();
    if (response->ok()) ++acked;
  }
  EXPECT_TRUE(server_->Wait().ok());
  EXPECT_EQ(server_->stats().drain_dropped, 0u);
  // lsn 1 is the Train; each acked confirm advanced it by exactly one.
  EXPECT_EQ(durable.ValueOrDie()->durability().last_lsn, 1 + acked);
  server_.reset();
  durable.ValueOrDie().reset();  // Crash-style close: no checkpoint.

  auto reopened = quest::RecommendationService::Open(
      &world_->taxonomy(), quest::RecommendationService::Options{}, dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const auto stats = reopened.ValueOrDie()->durability();
  EXPECT_TRUE(reopened.ValueOrDie()->trained());
  EXPECT_EQ(stats.replayed_records, 1 + acked)
      << "every wire-acknowledged confirm must replay";
  EXPECT_EQ(stats.last_lsn, 1 + acked);
  std::remove(quest::ServiceLogPath(dir).c_str());
  std::remove(quest::ServiceSnapshotPath(dir).c_str());
}

TEST_F(ServerTest, AcceptFaultDelaysButDoesNotLoseConnections) {
  FaultInjector fault;
  fault.AddFault({"server.accept", 0, FaultKind::kTransient, 0});
  Server::Options options;
  options.fault = &fault;
  Start(options);  // Connect() itself rides through the accept fault.
  auto response = client_.Call(1, "Health", Json::Object());
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->ok());
  server_.reset();
}

}  // namespace
}  // namespace qatk::server
