#include <gtest/gtest.h>

#include <sys/stat.h>

#include <fstream>

#include "datagen/oem.h"
#include "datagen/world.h"
#include "kb/corpus_io.h"

namespace qatk::kb {
namespace {

std::string MakeDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void Cleanup(const std::string& dir) {
  for (const char* file : {"/bundles.csv", "/part_desc.csv",
                           "/error_desc.csv"}) {
    std::remove((dir + file).c_str());
  }
  ::rmdir(dir.c_str());
}

Corpus SmallCorpus() {
  Corpus corpus;
  DataBundle a;
  a.reference_number = "REF1";
  a.article_code = "A1";
  a.part_id = "P1";
  a.error_code = "E1";
  a.responsibility_code = "R1";
  a.mechanic_report = "messy text, with commas and \"quotes\"";
  a.supplier_report = "multi\nline supplier report";
  a.final_oem_report = "done";
  corpus.bundles.push_back(a);
  DataBundle b;
  b.reference_number = "REF2";
  b.part_id = "P2";
  // Uncoded bundle: empty error code and no optional reports.
  b.mechanic_report = "kaputt";
  b.supplier_report = "NTF";
  corpus.bundles.push_back(b);
  corpus.part_descriptions["P1"] = "radio / head unit";
  corpus.error_descriptions["E1"] = "burnt contact";
  return corpus;
}

TEST(CorpusIoTest, RoundTripPreservesEverything) {
  std::string dir = MakeDir("corpus_io_roundtrip");
  Corpus original = SmallCorpus();
  ASSERT_TRUE(SaveCorpusCsv(original, dir).ok());
  auto loaded = LoadCorpusCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->bundles.size(), 2u);
  EXPECT_EQ(loaded->bundles[0].mechanic_report,
            "messy text, with commas and \"quotes\"");
  EXPECT_EQ(loaded->bundles[0].supplier_report,
            "multi\nline supplier report");
  EXPECT_EQ(loaded->bundles[1].error_code, "");
  EXPECT_EQ(loaded->part_descriptions.at("P1"), "radio / head unit");
  EXPECT_EQ(loaded->error_descriptions.at("E1"), "burnt contact");
  Cleanup(dir);
}

TEST(CorpusIoTest, GeneratedCorpusRoundTrips) {
  datagen::WorldConfig config;
  config.num_parts = 6;
  config.num_article_codes = 40;
  config.num_error_codes = 80;
  config.max_codes_largest_part = 25;
  config.mid_part_min_codes = 8;
  config.mid_part_max_codes = 20;
  config.small_parts = 2;
  config.num_components = 80;
  config.num_symptoms = 70;
  config.num_locations = 20;
  config.num_solutions = 20;
  config.components_per_part = 6;
  datagen::DomainWorld world(config);
  datagen::OemConfig oem;
  oem.num_bundles = 300;
  datagen::OemCorpusGenerator generator(&world, oem);
  Corpus original = generator.Generate();

  std::string dir = MakeDir("corpus_io_generated");
  ASSERT_TRUE(SaveCorpusCsv(original, dir).ok());
  auto loaded = LoadCorpusCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->bundles.size(), original.bundles.size());
  for (size_t i = 0; i < original.bundles.size(); i += 31) {
    EXPECT_EQ(loaded->bundles[i].reference_number,
              original.bundles[i].reference_number);
    EXPECT_EQ(loaded->bundles[i].supplier_report,
              original.bundles[i].supplier_report);
  }
  EXPECT_EQ(loaded->part_descriptions, original.part_descriptions);
  EXPECT_EQ(loaded->error_descriptions, original.error_descriptions);
  Cleanup(dir);
}

TEST(CorpusIoTest, MissingDescriptionFilesAreOptional) {
  std::string dir = MakeDir("corpus_io_optional");
  ASSERT_TRUE(SaveCorpusCsv(SmallCorpus(), dir).ok());
  std::remove((dir + "/part_desc.csv").c_str());
  std::remove((dir + "/error_desc.csv").c_str());
  auto loaded = LoadCorpusCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->part_descriptions.empty());
  Cleanup(dir);
}

TEST(CorpusIoTest, MissingBundlesFileIsIOError) {
  std::string dir = MakeDir("corpus_io_missing");
  EXPECT_TRUE(LoadCorpusCsv(dir).status().IsIOError());
  Cleanup(dir);
}

TEST(CorpusIoTest, MalformedRowsRejected) {
  std::string dir = MakeDir("corpus_io_malformed");
  {
    std::ofstream out(dir + "/bundles.csv");
    out << "wrong,header\n";
  }
  EXPECT_TRUE(LoadCorpusCsv(dir).status().IsInvalid());
  {
    std::ofstream out(dir + "/bundles.csv");
    out << "ref,article_code,part_id,error_code,resp_code,mechanic,"
           "initial,supplier,final\n";
    out << "only,three,fields\n";
  }
  EXPECT_TRUE(LoadCorpusCsv(dir).status().IsInvalid());
  {
    std::ofstream out(dir + "/bundles.csv");
    out << "ref,article_code,part_id,error_code,resp_code,mechanic,"
           "initial,supplier,final\n";
    out << ",A1,P1,E1,R1,m,i,s,f\n";  // Empty reference number.
  }
  EXPECT_TRUE(LoadCorpusCsv(dir).status().IsInvalid());
  Cleanup(dir);
}

constexpr char kHeaderLine[] =
    "ref,article_code,part_id,error_code,resp_code,mechanic,"
    "initial,supplier,final\n";

TEST(CorpusIoTest, MidRecordTruncationNamesOpeningLine) {
  // A file cut off inside a quoted field — the classic torn tail of an
  // interrupted export. The error must point at the line the quote
  // opened on, not a generic parse failure.
  std::string dir = MakeDir("corpus_io_torn");
  {
    std::ofstream out(dir + "/bundles.csv");
    out << kHeaderLine;
    out << "REF1,A1,P1,E1,R1,ok,i,s,f\n";
    out << "REF2,A2,P2,E2,R2,\"torn mid-rec";  // No closing quote, no \n.
  }
  Status st = LoadCorpusCsv(dir).status();
  ASSERT_TRUE(st.IsInvalid()) << st;
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st;
  Cleanup(dir);
}

TEST(CorpusIoTest, ShortRowNamesStartingLineAcrossMultilineFields) {
  // The row before the bad one spans three physical lines inside a quoted
  // field; the reported line number must account for that.
  std::string dir = MakeDir("corpus_io_lines");
  {
    std::ofstream out(dir + "/bundles.csv");
    out << kHeaderLine;                                    // line 1
    out << "REF1,A1,P1,E1,R1,\"multi\nline\nreport\",i,s,f\n";  // lines 2-4
    out << "only,three,fields\n";                          // line 5
  }
  Status st = LoadCorpusCsv(dir).status();
  ASSERT_TRUE(st.IsInvalid()) << st;
  EXPECT_NE(st.message().find("line 5"), std::string::npos) << st;
  EXPECT_NE(st.message().find("3 fields"), std::string::npos) << st;
  Cleanup(dir);
}

TEST(CorpusIoTest, DescriptionFileTruncationNamesLine) {
  std::string dir = MakeDir("corpus_io_desc_lines");
  ASSERT_TRUE(SaveCorpusCsv(SmallCorpus(), dir).ok());
  {
    std::ofstream out(dir + "/part_desc.csv");
    out << "part_id,description\n";
    out << "P1,ok\n";
    out << "P2\n";  // Lost its description column.
  }
  Status st = LoadCorpusCsv(dir).status();
  ASSERT_TRUE(st.IsInvalid()) << st;
  EXPECT_NE(st.message().find("part_desc.csv"), std::string::npos) << st;
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st;
  Cleanup(dir);
}

TEST(CorpusIoTest, TransientReadFaultIsRetriedAway) {
  std::string dir = MakeDir("corpus_io_transient");
  Corpus corpus = SmallCorpus();
  ASSERT_TRUE(SaveCorpusCsv(corpus, dir).ok());
  FaultInjector fault;
  fault.AddFault({"corpus.read", 0, FaultKind::kTransient, 0.0});
  CorpusLoadOptions options;
  options.fault = &fault;
  options.retry = RetryPolicy({.max_attempts = 3,
                               .base_backoff = std::chrono::microseconds(0)});
  auto loaded = LoadCorpusCsv(dir, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->bundles.size(), corpus.bundles.size());
  Cleanup(dir);
}

TEST(CorpusIoTest, PermanentReadFaultSurfaces) {
  std::string dir = MakeDir("corpus_io_permanent");
  ASSERT_TRUE(SaveCorpusCsv(SmallCorpus(), dir).ok());
  FaultInjector fault;
  fault.AddFault({"corpus.read", 0, FaultKind::kPermanent, 0.0});
  CorpusLoadOptions options;
  options.fault = &fault;
  EXPECT_TRUE(LoadCorpusCsv(dir, options).status().IsIOError());
  Cleanup(dir);
}

}  // namespace
}  // namespace qatk::kb
