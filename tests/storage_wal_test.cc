#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>

#include "common/fault.h"
#include "storage/database.h"
#include "storage/wal.h"

namespace qatk::db {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveDbFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".journal").c_str());
}

// ---------------------------------------------------------------------------
// Crc32 / WalFile
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // Standard test vector: CRC-32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(WalFileTest, AppendReadRoundTrip) {
  std::string path = TempPath("wal_roundtrip.wal");
  std::remove(path.c_str());
  auto wal = WalFile::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(*(*wal)->Empty());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "payload-1").ok());
  ASSERT_TRUE((*wal)->Append(WalRecordType::kDelete, "payload-2").ok());
  ASSERT_TRUE(
      (*wal)->Append(WalRecordType::kCreateTable, std::string("\0x\0", 3))
          .ok());
  auto records = (*wal)->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].type, WalRecordType::kInsert);
  EXPECT_EQ((*records)[0].payload, "payload-1");
  EXPECT_EQ((*records)[2].payload.size(), 3u);
  EXPECT_FALSE(*(*wal)->Empty());
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_TRUE(*(*wal)->Empty());
  std::remove(path.c_str());
}

TEST(WalFileTest, TornTailIgnored) {
  std::string path = TempPath("wal_torn.wal");
  std::remove(path.c_str());
  {
    auto wal = WalFile::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "intact").ok());
  }
  // Simulate a crash mid-append: raw garbage after the intact record.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x20\x00\x00\x00partial";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto wal = WalFile::Open(path);
  ASSERT_TRUE(wal.ok());
  auto records = (*wal)->ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].payload, "intact");
  std::remove(path.c_str());
}

TEST(WalFileTest, CorruptCrcStopsReplay) {
  std::string path = TempPath("wal_crc.wal");
  std::remove(path.c_str());
  {
    auto wal = WalFile::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "first").ok());
    ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "second").ok());
  }
  // Flip one payload byte of the second record.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);  // Inside "second" payload CRC region.
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto wal = WalFile::Open(path);
  auto records = (*wal)->ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u) << "corrupt record and tail must be cut";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash recovery end-to-end
// ---------------------------------------------------------------------------

Schema TestSchema() {
  return Schema({{"k", TypeId::kString}, {"v", TypeId::kInt64}});
}

Tuple Row(const std::string& k, int64_t v) {
  return Tuple({Value(k), Value(v)});
}

std::map<std::string, int64_t> Snapshot(Database* db,
                                        const std::string& table) {
  std::map<std::string, int64_t> rows;
  QATK_CHECK_OK(db->ScanTable(table, [&](const Rid&, const Tuple& t) {
    rows[t.value(0).AsString()] = t.value(1).AsInt64();
    return true;
  }));
  return rows;
}

TEST(CrashRecoveryTest, UncheckpointedInsertsSurviveCrash) {
  std::string path = TempPath("crash_basic.qdb");
  RemoveDbFiles(path);
  {
    auto db = Database::OpenFile(path, 128);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*db)->Insert("t", Row("k" + std::to_string(i), i)).ok());
    }
    // Crash: no Checkpoint; the Database is simply destroyed.
  }
  auto db = Database::OpenFile(path, 128);
  ASSERT_TRUE(db.ok()) << db.status();
  auto rows = Snapshot(db->get(), "t");
  ASSERT_EQ(rows.size(), 50u);
  EXPECT_EQ(rows["k17"], 17);
  RemoveDbFiles(path);
}

TEST(CrashRecoveryTest, NoDuplicatesWhenDirtyPagesWereEvicted) {
  // The critical undo/redo interaction: with a tiny pool, dirty pages are
  // evicted into the base file before the crash. Recovery must first roll
  // those pages back (journal) and then redo the logged inserts — rows
  // must appear exactly once.
  std::string path = TempPath("crash_evict.qdb");
  RemoveDbFiles(path);
  {
    auto db = Database::OpenFile(path, 8);  // Tiny pool forces evictions.
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
    ASSERT_TRUE((*db)->CreateIndex("t_by_k", "t", {"k"}).ok());
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE((*db)->Insert("t", Row("k" + std::to_string(i), i)).ok());
    }
    EXPECT_GT((*db)->buffer_pool()->eviction_count(), 0u)
        << "test needs eviction pressure to be meaningful";
    // Crash without checkpoint.
  }
  auto db = Database::OpenFile(path, 64);
  ASSERT_TRUE(db.ok()) << db.status();
  auto rows = Snapshot(db->get(), "t");
  EXPECT_EQ(rows.size(), 400u) << "every insert exactly once";
  EXPECT_EQ(*(*db)->CountRows("t"), 400u);
  // Index consistent too.
  int found = 0;
  ASSERT_TRUE((*db)->ScanIndexEquals("t_by_k", {Value("k123")},
                                     [&](const Rid&) {
                                       ++found;
                                       return true;
                                     })
                  .ok());
  EXPECT_EQ(found, 1);
  RemoveDbFiles(path);
}

TEST(CrashRecoveryTest, OpsAfterCheckpointReplayOnTop) {
  std::string path = TempPath("crash_after_ckpt.qdb");
  RemoveDbFiles(path);
  {
    auto db = Database::OpenFile(path, 64);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*db)->Insert("t", Row("pre" + std::to_string(i), i)).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    for (int i = 0; i < 15; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("t", Row("post" + std::to_string(i), i)).ok());
    }
    // Crash.
  }
  auto db = Database::OpenFile(path, 64);
  ASSERT_TRUE(db.ok()) << db.status();
  auto rows = Snapshot(db->get(), "t");
  EXPECT_EQ(rows.size(), 35u);
  EXPECT_EQ(rows.count("pre3"), 1u);
  EXPECT_EQ(rows.count("post14"), 1u);
  RemoveDbFiles(path);
}

TEST(CrashRecoveryTest, DeletesReplayed) {
  std::string path = TempPath("crash_delete.qdb");
  RemoveDbFiles(path);
  {
    auto db = Database::OpenFile(path, 64);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
    std::vector<Rid> rids;
    for (int i = 0; i < 10; ++i) {
      rids.push_back(*(*db)->Insert("t", Row("k" + std::to_string(i), i)));
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Delete("t", rids[3]).ok());
    ASSERT_TRUE((*db)->Delete("t", rids[7]).ok());
    // Crash.
  }
  auto db = Database::OpenFile(path, 64);
  ASSERT_TRUE(db.ok()) << db.status();
  auto rows = Snapshot(db->get(), "t");
  EXPECT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows.count("k3"), 0u);
  EXPECT_EQ(rows.count("k7"), 0u);
  RemoveDbFiles(path);
}

TEST(CrashRecoveryTest, DdlReplayed) {
  std::string path = TempPath("crash_ddl.qdb");
  RemoveDbFiles(path);
  {
    auto db = Database::OpenFile(path, 64);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
    ASSERT_TRUE((*db)->CreateIndex("idx", "t", {"k"}).ok());
    ASSERT_TRUE((*db)->Insert("t", Row("x", 1)).ok());
    // Crash before any checkpoint records the DDL in the catalog.
  }
  auto db = Database::OpenFile(path, 64);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->ListTables().size(), 1u);
  EXPECT_EQ((*db)->ListIndexes().size(), 1u);
  int found = 0;
  ASSERT_TRUE((*db)->ScanIndexEquals("idx", {Value("x")},
                                     [&](const Rid&) {
                                       ++found;
                                       return true;
                                     })
                  .ok());
  EXPECT_EQ(found, 1);
  RemoveDbFiles(path);
}

TEST(CrashRecoveryTest, CheckpointTruncatesLogs) {
  std::string path = TempPath("crash_trunc.qdb");
  RemoveDbFiles(path);
  auto db = Database::OpenFile(path, 64);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
  ASSERT_TRUE((*db)->Insert("t", Row("a", 1)).ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  auto wal = WalFile::Open(path + ".wal");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(*(*wal)->Empty());
  RemoveDbFiles(path);
}

TEST(CrashRecoveryTest, RepeatedCrashCycles) {
  std::string path = TempPath("crash_cycles.qdb");
  RemoveDbFiles(path);
  size_t expected = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto db = Database::OpenFile(path, 16);
    ASSERT_TRUE(db.ok()) << "cycle " << cycle << ": " << db.status();
    if (cycle == 0) {
      ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
    }
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE((*db)->Insert("t",
                                Row("c" + std::to_string(cycle) + "_" +
                                        std::to_string(i),
                                    i))
                      .ok());
      ++expected;
    }
    EXPECT_EQ(*(*db)->CountRows("t"), expected);
    // Crash every cycle; each reopen replays and re-checkpoints.
  }
  auto db = Database::OpenFile(path, 64);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(*(*db)->CountRows("t"), expected);
  RemoveDbFiles(path);
}

// ---------------------------------------------------------------------------
// Torn-tail coverage: every record type, every byte offset
// ---------------------------------------------------------------------------

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalFileTest, TornTailAtEveryByteOffsetForEveryRecordType) {
  const WalRecordType kAllTypes[] = {
      WalRecordType::kCreateTable, WalRecordType::kCreateIndex,
      WalRecordType::kInsert, WalRecordType::kDelete, WalRecordType::kUpdate,
  };
  for (WalRecordType type : kAllTypes) {
    std::string path = TempPath(
        "wal_torn_all_" +
        std::to_string(static_cast<unsigned>(type)) + ".wal");
    std::remove(path.c_str());
    {
      auto wal = WalFile::Open(path);
      ASSERT_TRUE(wal.ok());
      ASSERT_TRUE((*wal)->Append(WalRecordType::kInsert, "first").ok());
      ASSERT_TRUE((*wal)->Append(WalRecordType::kUpdate, "second").ok());
      ASSERT_TRUE((*wal)->Append(type, "final-record-payload").ok());
    }
    std::string full = SlurpFile(path);
    // Frame layout: [len u32][type u8][payload][crc u32].
    size_t final_frame = 4 + 1 + std::strlen("final-record-payload") + 4;
    ASSERT_GT(full.size(), final_frame);
    size_t prefix = full.size() - final_frame;
    // Cut the log at every byte of the final frame: from "frame entirely
    // gone" up to "one byte short of intact". ReadAll must return exactly
    // the two intact records every time — never an error, never a
    // half-parsed third record.
    for (size_t cut = prefix; cut < full.size(); ++cut) {
      WriteBytes(path, full.substr(0, cut));
      auto wal = WalFile::Open(path);
      ASSERT_TRUE(wal.ok());
      auto records = (*wal)->ReadAll();
      ASSERT_TRUE(records.ok())
          << "type " << static_cast<unsigned>(type) << " cut at " << cut;
      ASSERT_EQ(records->size(), 2u)
          << "type " << static_cast<unsigned>(type) << " cut at " << cut;
      EXPECT_EQ((*records)[0].payload, "first");
      EXPECT_EQ((*records)[1].payload, "second");
    }
    // Sanity: the untruncated log still yields all three.
    WriteBytes(path, full);
    auto wal = WalFile::Open(path);
    ASSERT_TRUE(wal.ok());
    auto records = (*wal)->ReadAll();
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 3u);
    EXPECT_EQ((*records)[2].type, type);
    std::remove(path.c_str());
  }
}

TEST(CrashRecoveryTest, CrashBetweenWalTruncateAndJournalReset) {
  // Checkpoint() flushes pages, truncates the WAL, then resets the
  // journal. A crash inside that window leaves a dirty journal next to an
  // empty WAL; rolling the journal back there would undo the freshly
  // committed checkpoint with no redo log to rebuild it. Recovery must
  // recognize the state and keep the flushed pages.
  std::string path = TempPath("crash_mid_ckpt.qdb");
  RemoveDbFiles(path);
  FaultInjector fault;
  // journal.begin fires at: initial creation Begin(0), creation-checkpoint
  // Begin, and then the explicit Checkpoint below — countdown 2 crashes
  // the third, after its WAL truncation already happened.
  fault.AddFault({"journal.begin", 2, FaultKind::kCrash, 0.0});
  {
    Database::OpenOptions open;
    open.pool_pages = 8;  // Evictions populate the journal.
    open.fault = &fault;
    auto db = Database::OpenFile(path, open);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->CreateTable("t", TestSchema()).ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*db)->Insert("t", Row("k" + std::to_string(i), i)).ok());
    }
    Status st = (*db)->Checkpoint();
    ASSERT_FALSE(st.ok()) << "checkpoint must hit the injected crash";
    ASSERT_TRUE(fault.crashed());
  }
  // Confirm the crash really landed inside the window: WAL empty, journal
  // still carrying the pre-checkpoint images.
  {
    std::ifstream wal(path + ".wal", std::ios::binary | std::ios::ate);
    ASSERT_TRUE(wal.good());
    EXPECT_EQ(wal.tellg(), std::streampos(0));
    std::ifstream journal(path + ".journal", std::ios::binary | std::ios::ate);
    ASSERT_TRUE(journal.good());
    EXPECT_GT(journal.tellg(), std::streampos(16));
  }
  auto db = Database::OpenFile(path, 64);
  ASSERT_TRUE(db.ok()) << db.status();
  auto rows = Snapshot(db->get(), "t");
  EXPECT_EQ(rows.size(), 200u) << "mid-checkpoint crash lost committed rows";
  EXPECT_EQ(rows["k123"], 123);
  RemoveDbFiles(path);
}

}  // namespace
}  // namespace qatk::db
