#include <gtest/gtest.h>

#include <set>

#include "storage/database.h"
#include "storage/executor.h"

namespace qatk::db {
namespace {

Schema PartsSchema() {
  return Schema({{"part_id", TypeId::kString},
                 {"error_code", TypeId::kString},
                 {"qty", TypeId::kInt64}});
}

Tuple PartRow(const std::string& part, const std::string& code, int64_t qty) {
  return Tuple({Value(part), Value(code), Value(qty)});
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::OpenInMemory(256);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateTableAndInsert) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  auto rid = db_->Insert("parts", PartRow("P1", "E7", 3));
  ASSERT_TRUE(rid.ok());
  auto row = db_->Get("parts", *rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value(0).AsString(), "P1");
  EXPECT_EQ(row->value(2).AsInt64(), 3);
}

TEST_F(DatabaseTest, DuplicateTableRejected) {
  ASSERT_TRUE(db_->CreateTable("t", PartsSchema()).ok());
  EXPECT_TRUE(db_->CreateTable("t", PartsSchema()).IsAlreadyExists());
}

TEST_F(DatabaseTest, InvalidNamesRejected) {
  EXPECT_TRUE(db_->CreateTable("", PartsSchema()).IsInvalid());
  EXPECT_TRUE(db_->CreateTable("has space", PartsSchema()).IsInvalid());
}

TEST_F(DatabaseTest, UnknownTableIsKeyError) {
  EXPECT_TRUE(db_->Insert("nope", PartRow("a", "b", 1)).status().IsKeyError());
  EXPECT_TRUE(db_->GetTable("nope").status().IsKeyError());
}

TEST_F(DatabaseTest, InsertTypeMismatchRejected) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  Tuple bad({Value(static_cast<int64_t>(1)), Value("E"), Value("not int")});
  EXPECT_TRUE(db_->Insert("parts", bad).status().IsInvalid());
}

TEST_F(DatabaseTest, IndexLookupFindsAllDuplicates) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(db_->CreateIndex("idx_part", "parts", {"part_id"}).ok());
  for (int i = 0; i < 50; ++i) {
    std::string part = "P" + std::to_string(i % 5);
    ASSERT_TRUE(
        db_->Insert("parts", PartRow(part, "E" + std::to_string(i), 1)).ok());
  }
  int count = 0;
  ASSERT_TRUE(db_->ScanIndexEquals("idx_part", {Value("P2")},
                                   [&](const Rid&) {
                                     ++count;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST_F(DatabaseTest, IndexBackfillsExistingRows) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db_->Insert("parts", PartRow("P1", "E", i)).ok());
  }
  ASSERT_TRUE(db_->CreateIndex("late_idx", "parts", {"part_id"}).ok());
  int count = 0;
  ASSERT_TRUE(db_->ScanIndexEquals("late_idx", {Value("P1")},
                                   [&](const Rid&) {
                                     ++count;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(count, 30);
}

TEST_F(DatabaseTest, CompositeIndexPrefixLookup) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(
      db_->CreateIndex("idx2", "parts", {"part_id", "error_code"}).ok());
  ASSERT_TRUE(db_->Insert("parts", PartRow("P1", "E1", 1)).ok());
  ASSERT_TRUE(db_->Insert("parts", PartRow("P1", "E2", 2)).ok());
  ASSERT_TRUE(db_->Insert("parts", PartRow("P2", "E1", 3)).ok());
  int full = 0;
  ASSERT_TRUE(db_->ScanIndexEquals("idx2", {Value("P1"), Value("E2")},
                                   [&](const Rid&) {
                                     ++full;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(full, 1);
  int prefix = 0;
  ASSERT_TRUE(db_->ScanIndexEquals("idx2", {Value("P1")},
                                   [&](const Rid&) {
                                     ++prefix;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(prefix, 2);
}

TEST_F(DatabaseTest, SimilarStringKeysDoNotCrossMatch) {
  // "P" + "1x" must not collide with "P1" + "x" in the composite encoding.
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(
      db_->CreateIndex("idx2", "parts", {"part_id", "error_code"}).ok());
  ASSERT_TRUE(db_->Insert("parts", PartRow("P", "1x", 1)).ok());
  ASSERT_TRUE(db_->Insert("parts", PartRow("P1", "x", 2)).ok());
  int count = 0;
  ASSERT_TRUE(db_->ScanIndexEquals("idx2", {Value("P1"), Value("x")},
                                   [&](const Rid&) {
                                     ++count;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(DatabaseTest, DeleteMaintainsIndexes) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(db_->CreateIndex("idx", "parts", {"part_id"}).ok());
  Rid rid = *db_->Insert("parts", PartRow("P9", "E9", 9));
  ASSERT_TRUE(db_->Delete("parts", rid).ok());
  int count = 0;
  ASSERT_TRUE(db_->ScanIndexEquals("idx", {Value("P9")},
                                   [&](const Rid&) {
                                     ++count;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(count, 0);
  EXPECT_EQ(*db_->CountRows("parts"), 0u);
}

TEST_F(DatabaseTest, ScanTableVisitsEverything) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  std::set<std::string> expected;
  for (int i = 0; i < 100; ++i) {
    std::string code = "E" + std::to_string(i);
    ASSERT_TRUE(db_->Insert("parts", PartRow("P", code, i)).ok());
    expected.insert(code);
  }
  std::set<std::string> seen;
  ASSERT_TRUE(db_->ScanTable("parts", [&](const Rid&, const Tuple& t) {
    seen.insert(t.value(1).AsString());
    return true;
  }).ok());
  EXPECT_EQ(seen, expected);
}

TEST_F(DatabaseTest, FilePersistenceRoundTrip) {
  std::string path = ::testing::TempDir() + "/qdb_database_test.db";
  std::remove(path.c_str());
  {
    auto db = Database::OpenFile(path, 128);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE((*db)->CreateTable("parts", PartsSchema()).ok());
    ASSERT_TRUE((*db)->CreateIndex("idx", "parts", {"part_id"}).ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("parts", PartRow("P" + std::to_string(i % 7),
                                         "E" + std::to_string(i), i))
              .ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    auto db = Database::OpenFile(path, 128);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_EQ(*(*db)->CountRows("parts"), 200u);
    int count = 0;
    ASSERT_TRUE((*db)->ScanIndexEquals("idx", {Value("P3")},
                                       [&](const Rid&) {
                                         ++count;
                                         return true;
                                       })
                    .ok());
    EXPECT_GT(count, 20);
  }
  std::remove(path.c_str());
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_FALSE(LikeMatch("hello", "h_loo"));
  EXPECT_FALSE(LikeMatch("hello", "hell"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_TRUE(LikeMatch("abc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("acb", "a%b%c"));
  // Backtracking case: '%' must be able to give characters back.
  EXPECT_TRUE(LikeMatch("mississippi", "%issip%"));
}

TEST_F(DatabaseTest, UpdateMaintainsIndexesAndData) {
  ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
  ASSERT_TRUE(db_->CreateIndex("idx", "parts", {"part_id"}).ok());
  Rid rid = *db_->Insert("parts", PartRow("P1", "E1", 1));
  Rid new_rid = *db_->Update("parts", rid, PartRow("P2", "E2", 5));
  auto row = db_->Get("parts", new_rid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value(0).AsString(), "P2");
  int p1 = 0;
  int p2 = 0;
  ASSERT_TRUE(db_->ScanIndexEquals("idx", {Value("P1")}, [&](const Rid&) {
    ++p1;
    return true;
  }).ok());
  ASSERT_TRUE(db_->ScanIndexEquals("idx", {Value("P2")}, [&](const Rid&) {
    ++p2;
    return true;
  }).ok());
  EXPECT_EQ(p1, 0);
  EXPECT_EQ(p2, 1);
}

// ---------------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------------

class ExecutorTest : public DatabaseTest {
 protected:
  void SetUp() override {
    DatabaseTest::SetUp();
    ASSERT_TRUE(db_->CreateTable("parts", PartsSchema()).ok());
    ASSERT_TRUE(db_->CreateIndex("idx_part", "parts", {"part_id"}).ok());
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(db_->Insert("parts", PartRow("P" + std::to_string(i % 3),
                                               "E" + std::to_string(i % 10),
                                               i))
                      .ok());
    }
  }
};

TEST_F(ExecutorTest, SeqScanWithPredicate) {
  Predicate pred;
  pred.AddTerm("qty", CompareOp::kGe, Value(static_cast<int64_t>(50)));
  SeqScanExecutor scan(db_.get(), "parts", pred);
  auto rows = CollectAll(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(ExecutorTest, IndexScanMatchesSeqScan) {
  Predicate empty;
  IndexScanExecutor iscan(db_.get(), "idx_part", {Value("P1")}, empty);
  auto via_index = CollectAll(&iscan);
  ASSERT_TRUE(via_index.ok());

  Predicate pred;
  pred.AddTerm("part_id", CompareOp::kEq, Value("P1"));
  SeqScanExecutor sscan(db_.get(), "parts", pred);
  auto via_scan = CollectAll(&sscan);
  ASSERT_TRUE(via_scan.ok());
  EXPECT_EQ(via_index->size(), via_scan->size());
  EXPECT_EQ(via_index->size(), 20u);
}

TEST_F(ExecutorTest, ProjectSelectsColumns) {
  Predicate empty;
  auto scan = std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty);
  ProjectExecutor project(std::move(scan), {"error_code"});
  auto rows = CollectAll(&project);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 60u);
  EXPECT_EQ((*rows)[0].size(), 1u);
  EXPECT_EQ(project.output_schema().num_columns(), 1u);
  EXPECT_EQ(project.output_schema().column(0).name, "error_code");
}

TEST_F(ExecutorTest, AggregateGroupByCount) {
  Predicate empty;
  auto scan = std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty);
  AggregateExecutor agg(std::move(scan), {"part_id"},
                        {{AggKind::kCountStar, "", "n"}});
  auto rows = CollectAll(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  for (const Tuple& row : *rows) {
    EXPECT_EQ(row.value(1).AsInt64(), 20);
  }
}

TEST_F(ExecutorTest, AggregateSumMinMax) {
  Predicate empty;
  auto scan = std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty);
  AggregateExecutor agg(std::move(scan), {},
                        {{AggKind::kSum, "qty", "total"},
                         {AggKind::kMin, "qty", "lo"},
                         {AggKind::kMax, "qty", "hi"}});
  auto rows = CollectAll(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].value(0).AsInt64(), 59 * 60 / 2);
  EXPECT_EQ((*rows)[0].value(1).AsInt64(), 0);
  EXPECT_EQ((*rows)[0].value(2).AsInt64(), 59);
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInput) {
  Predicate pred;
  pred.AddTerm("qty", CompareOp::kLt, Value(static_cast<int64_t>(0)));
  auto scan = std::make_unique<SeqScanExecutor>(db_.get(), "parts", pred);
  AggregateExecutor agg(std::move(scan), {},
                        {{AggKind::kCountStar, "", "n"}});
  auto rows = CollectAll(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].value(0).AsInt64(), 0);
}

TEST_F(ExecutorTest, SortAscendingDescending) {
  Predicate empty;
  auto scan = std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty);
  SortExecutor sort(std::move(scan), {{"qty", /*descending=*/true}});
  auto rows = CollectAll(&sort);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 60u);
  EXPECT_EQ((*rows)[0].value(2).AsInt64(), 59);
  EXPECT_EQ((*rows)[59].value(2).AsInt64(), 0);
}

TEST_F(ExecutorTest, LimitAndOffset) {
  Predicate empty;
  auto scan = std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty);
  auto sort = std::make_unique<SortExecutor>(
      std::move(scan), std::vector<SortKey>{{"qty", false}});
  LimitExecutor limit(std::move(sort), 5, 10);
  auto rows = CollectAll(&limit);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0].value(2).AsInt64(), 10);
  EXPECT_EQ((*rows)[4].value(2).AsInt64(), 14);
}

TEST_F(ExecutorTest, IndexRangeScanBoundsRespected) {
  Predicate residual;
  residual.AddTerm("qty", CompareOp::kGe, Value(static_cast<int64_t>(10)));
  residual.AddTerm("qty", CompareOp::kLe, Value(static_cast<int64_t>(20)));
  ASSERT_TRUE(db_->CreateIndex("idx_qty", "parts", {"qty"}).ok());
  IndexRangeScanExecutor scan(db_.get(), "idx_qty",
                              Value(static_cast<int64_t>(10)),
                              Value(static_cast<int64_t>(20)),
                              /*upper_inclusive=*/true, residual);
  auto rows = CollectAll(&scan);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 11u);  // qty 10..20 inclusive.
  // Index order: ascending by qty.
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE((*rows)[i - 1].value(2).AsInt64(),
              (*rows)[i].value(2).AsInt64());
  }
}

TEST_F(ExecutorTest, IndexRangeScanUnboundedSides) {
  ASSERT_TRUE(db_->CreateIndex("idx_qty", "parts", {"qty"}).ok());
  Predicate empty;
  IndexRangeScanExecutor all(db_.get(), "idx_qty", Value(), Value(),
                             false, empty);
  auto rows = CollectAll(&all);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 60u);
}

TEST_F(ExecutorTest, FilterExecutorComposable) {
  Predicate empty;
  auto scan = std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty);
  Predicate pred;
  pred.AddTerm("qty", CompareOp::kLt, Value(static_cast<int64_t>(3)));
  FilterExecutor filter(std::move(scan), pred);
  auto rows = CollectAll(&filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // qty 0, 1, 2.
}

TEST_F(ExecutorTest, HashJoinMatchesNestedLoopReference) {
  ASSERT_TRUE(db_->CreateTable(
                      "codes", Schema({{"error_code", TypeId::kString},
                                       {"severity", TypeId::kInt64}}))
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Insert("codes",
                            Tuple({Value("E" + std::to_string(i)),
                                   Value(static_cast<int64_t>(i % 3))}))
                    .ok());
  }
  Predicate empty;
  HashJoinExecutor join(
      std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty),
      std::make_unique<SeqScanExecutor>(db_.get(), "codes", empty),
      "error_code", "error_code");
  auto rows = CollectAll(&join);
  ASSERT_TRUE(rows.ok()) << rows.status();

  // Reference nested loop.
  size_t expected = 0;
  ASSERT_TRUE(db_->ScanTable("parts", [&](const Rid&, const Tuple& left) {
    db_->ScanTable("codes", [&](const Rid&, const Tuple& right) {
      if (left.value(1) == right.value(0)) ++expected;
      return true;
    }).Abort();
    return true;
  }).ok());
  EXPECT_EQ(rows->size(), expected);
  EXPECT_GT(expected, 0u);
  // Joined schema: parts columns then codes columns with suffix.
  EXPECT_EQ(join.output_schema().num_columns(), 5u);
  EXPECT_TRUE(join.output_schema().HasColumn("error_code_r"));
}

TEST_F(ExecutorTest, HashJoinUnknownKeyFails) {
  Predicate empty;
  HashJoinExecutor join(
      std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty),
      std::make_unique<SeqScanExecutor>(db_.get(), "parts", empty),
      "missing", "part_id");
  EXPECT_TRUE(join.Open().IsKeyError());
}

TEST_F(ExecutorTest, PredicateNullSemantics) {
  ASSERT_TRUE(db_->Insert("parts", Tuple({Value("PX"), Value(), Value()}))
                  .ok());
  Predicate is_null;
  is_null.AddTerm("error_code", CompareOp::kEq, Value());
  SeqScanExecutor scan(db_.get(), "parts", is_null);
  auto rows = CollectAll(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);

  Predicate lt_null;
  lt_null.AddTerm("qty", CompareOp::kLt, Value());
  SeqScanExecutor scan2(db_.get(), "parts", lt_null);
  auto rows2 = CollectAll(&scan2);
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(rows2->size(), 0u) << "ordered comparison vs NULL is never true";
}

}  // namespace
}  // namespace qatk::db
