// Cluster subsystem tests: sharder determinism, scatter-gather merge
// semantics, and — the load-bearing property — bit-identical equivalence
// between a sharded cluster and a single-node service. Equivalence is
// exercised at two levels: directly against RecommendationService::
// ShardTopK + MergePartials for every (shard count, sharder) config, and
// end-to-end over real sockets through a Coordinator front end.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/merge.h"
#include "cluster/sharder.h"
#include "core/classifier.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "kb/data_bundle.h"
#include "kb/frozen_index.h"
#include "kb/knowledge_base.h"
#include "obs/metrics.h"
#include "quest/recommendation_service.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace qatk::cluster {
namespace {

using quest::RecommendationService;
using server::Json;

// ---------------------------------------------------------------------------
// Sharder units.

TEST(SharderTest, HashIsDeterministicAndInRange) {
  HashSharder a(4);
  HashSharder b(4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "P" + std::to_string(i * 37);
    const uint32_t shard = a.ShardFor(key);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, b.ShardFor(key)) << key;
  }
  EXPECT_TRUE(a.stateless());
  EXPECT_STREQ(a.name(), "hash");
}

TEST(SharderTest, HashSpreadsKeysAcrossAllShards) {
  HashSharder sharder(4);
  std::set<uint32_t> hit;
  for (int i = 0; i < 64; ++i) {
    hit.insert(sharder.ShardFor("PART-" + std::to_string(i)));
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(SharderTest, RangeIsMonotoneInTheKeyPrefix) {
  RangeSharder sharder(5);
  // Sorted keys must map to non-decreasing shard indices: range
  // partitioning preserves lexicographic locality on the leading bytes.
  const std::vector<std::string> sorted = {
      "A0", "A9", "B100", "M55", "P01", "P99", "b20", "z9", "zzzzzzzzzz"};
  uint32_t prev = 0;
  for (const auto& key : sorted) {
    const uint32_t shard = sharder.ShardFor(key);
    EXPECT_LT(shard, 5u);
    EXPECT_GE(shard, prev) << key;
    prev = shard;
  }
  // Extremes of the prefix space land on the extreme shards.
  EXPECT_EQ(sharder.ShardFor(std::string(8, '\x00')), 0u);
  EXPECT_EQ(sharder.ShardFor(std::string(8, '\xff')), 4u);
  EXPECT_TRUE(sharder.stateless());
}

TEST(SharderTest, RoundRobinIsStatefulFirstSeenCyclic) {
  RoundRobinSharder sharder(3);
  EXPECT_FALSE(sharder.stateless());
  EXPECT_EQ(sharder.ShardFor("first"), 0u);
  EXPECT_EQ(sharder.ShardFor("second"), 1u);
  EXPECT_EQ(sharder.ShardFor("third"), 2u);
  EXPECT_EQ(sharder.ShardFor("fourth"), 0u);
  // Re-asking for a seen key returns its original assignment.
  EXPECT_EQ(sharder.ShardFor("second"), 1u);
  EXPECT_EQ(sharder.ShardFor("fifth"), 1u);
}

TEST(SharderTest, FactoryCoversNamesAndRejectsBadInput) {
  EXPECT_NE(MakeSharder("hash", 3), nullptr);
  EXPECT_NE(MakeSharder("range", 3), nullptr);
  EXPECT_NE(MakeSharder("round_robin", 3), nullptr);
  EXPECT_EQ(MakeSharder("hash", 0), nullptr);
  EXPECT_EQ(MakeSharder("mystery", 3), nullptr);
  auto one = MakeSharder("hash", 1);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->ShardFor("anything"), 0u);
}

// ---------------------------------------------------------------------------
// Merge units.

RecommendationService::ShardPartial MakePartial(
    bool known,
    std::vector<RecommendationService::ShardPartialItem> items) {
  RecommendationService::ShardPartial partial;
  partial.known_part = known;
  partial.items = std::move(items);
  return partial;
}

TEST(MergeTest, BreaksScoreTiesByOrdinal) {
  // Shard 1 holds the *older* node (ordinal 3) at the tied score; it must
  // win the dedup slot even though shard 0's partial lists first.
  auto merged = MergePartials(
      {MakePartial(true, {{"E2", 0.5, 7}}), MakePartial(true, {{"E1", 0.5, 3}})},
      /*max_nodes=*/25, /*top_n=*/10);
  EXPECT_TRUE(merged.known_part);
  ASSERT_EQ(merged.recommendation.top.size(), 2u);
  EXPECT_EQ(merged.recommendation.top[0].error_code, "E1");
  EXPECT_EQ(merged.recommendation.top[1].error_code, "E2");
  EXPECT_FALSE(merged.recommendation.truncated);
}

TEST(MergeTest, DedupsCodesKeepingTheBestOccurrence) {
  auto merged = MergePartials(
      {MakePartial(true, {{"E1", 0.9, 0}, {"E2", 0.4, 2}}),
       MakePartial(true, {{"E1", 0.6, 1}, {"E3", 0.5, 3}})},
      /*max_nodes=*/25, /*top_n=*/10);
  ASSERT_EQ(merged.recommendation.top.size(), 3u);
  EXPECT_EQ(merged.recommendation.top[0].error_code, "E1");
  EXPECT_EQ(merged.recommendation.top[0].score, 0.9);
  EXPECT_EQ(merged.recommendation.top[1].error_code, "E3");
  EXPECT_EQ(merged.recommendation.top[2].error_code, "E2");
}

TEST(MergeTest, TruncatesToTopNAndSetsTheFlag) {
  std::vector<RecommendationService::ShardPartialItem> items;
  for (int i = 0; i < 8; ++i) {
    items.push_back({"E" + std::to_string(i), 1.0 - i * 0.1,
                     static_cast<uint64_t>(i)});
  }
  auto merged = MergePartials({MakePartial(true, items)}, /*max_nodes=*/25,
                              /*top_n=*/3);
  EXPECT_TRUE(merged.recommendation.truncated);
  ASSERT_EQ(merged.recommendation.top.size(), 3u);
  EXPECT_EQ(merged.recommendation.top[0].error_code, "E0");
  EXPECT_EQ(merged.recommendation.top[2].error_code, "E2");
}

TEST(MergeTest, CapsThePoolAtMaxNodesBeforeDedup) {
  // Two shards each offer 3 nodes of the same code family; max_nodes=4
  // keeps only the global best 4 *nodes*, exactly like the single-node
  // classifier's candidate heap.
  auto merged = MergePartials(
      {MakePartial(true, {{"A", 0.9, 0}, {"B", 0.7, 2}, {"C", 0.3, 4}}),
       MakePartial(true, {{"D", 0.8, 1}, {"E", 0.6, 3}, {"F", 0.2, 5}})},
      /*max_nodes=*/4, /*top_n=*/10);
  ASSERT_EQ(merged.recommendation.top.size(), 4u);
  EXPECT_EQ(merged.recommendation.top[3].error_code, "E");
  EXPECT_FALSE(merged.recommendation.truncated);
}

TEST(MergeTest, UnknownPartStaysUnknownAndEmptyPartialsMergeClean) {
  auto merged = MergePartials(
      {MakePartial(false, {}), MakePartial(false, {})}, 25, 10);
  EXPECT_FALSE(merged.known_part);
  EXPECT_TRUE(merged.recommendation.top.empty());
  EXPECT_FALSE(merged.recommendation.truncated);
  // known_part ORs: one knowing shard marks the whole merge known.
  merged = MergePartials({MakePartial(false, {}), MakePartial(true, {})}, 25,
                         10);
  EXPECT_TRUE(merged.known_part);
}

// ---------------------------------------------------------------------------
// Cluster-vs-single-node equivalence (service level, no sockets).

datagen::WorldConfig TinyWorld() {
  datagen::WorldConfig config;
  config.num_parts = 6;
  config.num_article_codes = 40;
  config.num_error_codes = 80;
  config.max_codes_largest_part = 25;
  config.mid_part_min_codes = 8;
  config.mid_part_max_codes = 20;
  config.small_parts = 2;
  config.num_components = 80;
  config.num_symptoms = 70;
  config.num_locations = 20;
  config.num_solutions = 20;
  return config;
}

RecommendationService::Options ScopedOptions(const std::string& sharder_name,
                                             uint32_t index, uint32_t n) {
  RecommendationService::Options options;
  std::shared_ptr<Sharder> sharder = MakeSharder(sharder_name, n);
  options.shard.shard_index = index;
  options.shard.num_shards = n;
  options.shard.sharder = sharder_name;
  options.shard.owns_part = [sharder, index](const std::string& part) {
    return sharder->ShardFor(part) == index;
  };
  return options;
}

/// World + corpus + single-node reference shared by the equivalence and
/// wire tests (training is the slow part).
class ClusterEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new datagen::DomainWorld(TinyWorld());
    datagen::OemConfig oem;
    oem.num_bundles = 600;
    datagen::OemCorpusGenerator generator(world_, oem);
    corpus_ = new kb::Corpus(generator.Generate());
    reference_ = new RecommendationService(&world_->taxonomy(),
                                           RecommendationService::Options{});
    ASSERT_TRUE(reference_->Train(*corpus_).ok());
  }

  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
    delete world_;
    world_ = nullptr;
  }

  /// Trains one scoped service per shard for (sharder_name, n).
  static std::vector<std::unique_ptr<RecommendationService>> TrainShards(
      const std::string& sharder_name, uint32_t n) {
    std::vector<std::unique_ptr<RecommendationService>> shards;
    for (uint32_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<RecommendationService>(
          &world_->taxonomy(), ScopedOptions(sharder_name, i, n)));
      EXPECT_TRUE(shards.back()->Train(*corpus_).ok());
    }
    return shards;
  }

  /// The coordinator's two-round read path, executed in-process: probe the
  /// owner (fallback=false); when the part is unknown, scatter the
  /// all-nodes sweep (fallback=true) to every shard.
  static RecommendationService::Recommendation ClusterRecommend(
      const std::vector<std::unique_ptr<RecommendationService>>& shards,
      Sharder& sharder, const kb::DataBundle& bundle) {
    const uint32_t owner = sharder.ShardFor(bundle.part_id);
    auto probe = shards[owner]->ShardTopK(bundle, /*fallback=*/false);
    EXPECT_TRUE(probe.ok()) << probe.status();
    std::vector<RecommendationService::ShardPartial> partials;
    if (probe.ok() && probe.ValueOrDie().known_part) {
      partials.push_back(std::move(probe.ValueOrDie()));
    } else {
      for (const auto& shard : shards) {
        auto partial = shard->ShardTopK(bundle, /*fallback=*/true);
        EXPECT_TRUE(partial.ok()) << partial.status();
        if (partial.ok()) partials.push_back(std::move(partial.ValueOrDie()));
      }
    }
    return MergePartials(partials, /*max_nodes=*/25, /*top_n=*/10)
        .recommendation;
  }

  /// Exact comparison: codes, bit-identical scores, truncated flag.
  static bool SameRecommendation(
      const RecommendationService::Recommendation& a,
      const RecommendationService::Recommendation& b) {
    if (a.truncated != b.truncated || a.top.size() != b.top.size()) {
      return false;
    }
    for (size_t i = 0; i < a.top.size(); ++i) {
      if (a.top[i].error_code != b.top[i].error_code) return false;
      if (std::memcmp(&a.top[i].score, &b.top[i].score, sizeof(double)) != 0) {
        return false;
      }
    }
    return true;
  }

  /// Probes every corpus bundle plus unknown-part fallbacks and counts
  /// mismatches against the single-node reference.
  static void ExpectClusterMatchesReference(const std::string& sharder_name,
                                            uint32_t n) {
    auto shards = TrainShards(sharder_name, n);
    auto sharder = MakeSharder(sharder_name, n);
    ASSERT_NE(sharder, nullptr);
    size_t mismatches = 0;
    std::string first;
    for (const auto& bundle : corpus_->bundles) {
      auto want = reference_->Recommend(bundle);
      ASSERT_TRUE(want.ok()) << want.status();
      auto got = ClusterRecommend(shards, *sharder, bundle);
      if (!SameRecommendation(want.ValueOrDie(), got)) {
        if (++mismatches == 1) first = bundle.reference_number;
      }
    }
    // Unknown part ids exercise the fallback scatter (all-nodes sweep).
    for (int i = 0; i < 8; ++i) {
      kb::DataBundle probe = corpus_->bundles[i * 37 % corpus_->bundles.size()];
      probe.part_id = "ZZ-UNKNOWN-" + std::to_string(i);
      auto want = reference_->Recommend(probe);
      ASSERT_TRUE(want.ok()) << want.status();
      auto got = ClusterRecommend(shards, *sharder, probe);
      if (!SameRecommendation(want.ValueOrDie(), got)) {
        if (++mismatches == 1) first = probe.part_id;
      }
    }
    EXPECT_EQ(mismatches, 0u)
        << sharder_name << "/" << n << ": first mismatch at " << first;
  }

  static datagen::DomainWorld* world_;
  static kb::Corpus* corpus_;
  static RecommendationService* reference_;
};

datagen::DomainWorld* ClusterEquivalenceTest::world_ = nullptr;
kb::Corpus* ClusterEquivalenceTest::corpus_ = nullptr;
RecommendationService* ClusterEquivalenceTest::reference_ = nullptr;

TEST_F(ClusterEquivalenceTest, HashShardsMatchSingleNode) {
  for (uint32_t n : {1u, 2u, 3u, 4u}) {
    ExpectClusterMatchesReference("hash", n);
  }
}

TEST_F(ClusterEquivalenceTest, RangeShardsMatchSingleNode) {
  for (uint32_t n : {2u, 3u, 4u}) {
    ExpectClusterMatchesReference("range", n);
  }
}

TEST_F(ClusterEquivalenceTest, PrunedShardsMatchUnprunedSingleNodeReplay) {
  // Pruning-on 3-shard replay against a pruning-OFF single node: proves in
  // one sweep that neither the frequency-sorted ordinal remap nor the
  // block-skipping threshold changes a single cross-shard merge — codes,
  // score bits, and ordinal tie-breaking all bit-identical (hash + range).
  RecommendationService::Options unpruned_options;
  unpruned_options.prune_topk = false;
  RecommendationService unpruned(&world_->taxonomy(), unpruned_options);
  ASSERT_TRUE(unpruned.Train(*corpus_).ok());

  for (const char* sharder_name : {"hash", "range"}) {
    auto shards = TrainShards(sharder_name, 3);  // prune_topk defaults on.
    auto sharder = MakeSharder(sharder_name, 3);
    ASSERT_NE(sharder, nullptr);
    size_t mismatches = 0;
    std::string first;
    for (const auto& bundle : corpus_->bundles) {
      auto want = unpruned.Recommend(bundle);
      ASSERT_TRUE(want.ok()) << want.status();
      auto got = ClusterRecommend(shards, *sharder, bundle);
      if (!SameRecommendation(want.ValueOrDie(), got)) {
        if (++mismatches == 1) first = bundle.reference_number;
      }
    }
    for (int i = 0; i < 6; ++i) {
      kb::DataBundle probe =
          corpus_->bundles[(i * 53) % corpus_->bundles.size()];
      probe.part_id = "ZZ-PRUNED-" + std::to_string(i);
      auto want = unpruned.Recommend(probe);
      ASSERT_TRUE(want.ok()) << want.status();
      auto got = ClusterRecommend(shards, *sharder, probe);
      if (!SameRecommendation(want.ValueOrDie(), got)) {
        if (++mismatches == 1) first = probe.part_id;
      }
    }
    EXPECT_EQ(mismatches, 0u)
        << sharder_name << "/3 pruned cluster diverged from the unpruned "
        << "single node; first at " << first;
  }
}

/// Index-level version with a corpus engineered so the pruned scorer
/// *provably skips blocks inside the slices* (30 full-overlap contenders +
/// 300 hopeless light nodes per part): sliced pruned partials, mapped
/// through kept-node global ordinals, must merge to exactly what the
/// unrestricted index computes without pruning.
TEST(ShardedPruningTest, SlicedPrunedPartialsMergeExactlyUnderRealSkips) {
  kb::KnowledgeBase knowledge;
  const std::vector<std::string> parts = {"PART-A", "PART-B", "PART-C"};
  const std::vector<int64_t> heavy = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (const std::string& part : parts) {
    // Tie-heavy contenders: 30 distinct nodes with identical feature sets
    // (identical scores), so cross-shard dedup has real ordinal ties to
    // break. Codes must be distinct — AddInstance merges identical
    // (part, code, features) triples, and merged nodes would leave the
    // short runs too small to ever arm the pruning threshold.
    for (int i = 0; i < 30; ++i) {
      knowledge.AddInstance(part, "H" + std::to_string(i), heavy);
    }
    for (int i = 0; i < 300; ++i) {
      knowledge.AddInstance(part, "L" + std::to_string(i % 11),
                            {0, 100 + i});
    }
  }
  kb::FrozenIndex full = kb::FrozenIndex::Build(knowledge);

  HashSharder sharder(3);
  std::vector<kb::FrozenIndex> slices;
  std::vector<std::vector<uint32_t>> kept(3);
  for (uint32_t s = 0; s < 3; ++s) {
    slices.push_back(kb::FrozenIndex::Build(
        knowledge,
        [&sharder, s](const std::string& part) {
          return sharder.ShardFor(part) == s;
        },
        &kept[s]));
  }

  core::RankedKnnClassifier pruned(
      {core::SimilarityMeasure::kJaccard, 25, true});
  core::RankedKnnClassifier unpruned(
      {core::SimilarityMeasure::kJaccard, 25, false});
  kb::FrozenIndex::Scratch scratch;
  obs::Counter* blocks_skipped =
      obs::Registry::Global().GetCounter("qatk_prune_blocks_skipped_total");
  const uint64_t skipped_before = blocks_skipped->Value();

  // Turns the scratch heap into a ShardPartial, mapping local node indices
  // to global ordinals (identity for the unrestricted index).
  auto to_partial = [](const kb::FrozenIndex& index, bool known,
                       const std::vector<uint32_t>* ordinals,
                       const kb::FrozenIndex::Scratch& s) {
    RecommendationService::ShardPartial partial;
    partial.known_part = known;
    for (const auto& item : s.heap) {
      partial.items.push_back(
          {index.node_error_code(item.second), item.first,
           ordinals == nullptr ? item.second : (*ordinals)[item.second]});
    }
    return partial;
  };

  std::vector<std::vector<int64_t>> probes = {
      heavy, {0}, {0, 3, 7}, {1, 2}, {}, {0, 500}};
  std::vector<std::string> probe_parts = parts;
  probe_parts.push_back("NO-SUCH-PART");
  for (const std::string& part : probe_parts) {
    for (const std::vector<int64_t>& features : probes) {
      // Reference: the unrestricted index, pruning off, one partial.
      const bool known =
          unpruned.SelectTopNodes(full, part, features, &scratch);
      auto want = MergePartials({to_partial(full, known, nullptr, scratch)},
                                25, 10);

      // Cluster: owner probe when known, fallback scatter when not —
      // pruning on inside every slice.
      std::vector<RecommendationService::ShardPartial> partials;
      const uint32_t owner = sharder.ShardFor(part);
      if (pruned.SelectTopNodes(slices[owner], part, features, &scratch)) {
        partials.push_back(
            to_partial(slices[owner], true, &kept[owner], scratch));
      } else {
        for (uint32_t s = 0; s < 3; ++s) {
          pruned.SelectTopNodes(slices[s], part, features, &scratch);
          partials.push_back(to_partial(slices[s], false, &kept[s], scratch));
        }
      }
      auto got = MergePartials(partials, 25, 10);

      ASSERT_EQ(want.known_part, got.known_part) << part;
      ASSERT_EQ(want.recommendation.truncated, got.recommendation.truncated)
          << part;
      ASSERT_EQ(want.recommendation.top.size(),
                got.recommendation.top.size())
          << part;
      for (size_t i = 0; i < want.recommendation.top.size(); ++i) {
        ASSERT_EQ(want.recommendation.top[i].error_code,
                  got.recommendation.top[i].error_code)
            << part << " rank " << i;
        ASSERT_EQ(0, std::memcmp(&want.recommendation.top[i].score,
                                 &got.recommendation.top[i].score,
                                 sizeof(double)))
            << part << " rank " << i;
      }
    }
  }
  // The corpus was built to make pruning fire inside the slices; if this
  // stops holding, the test is no longer exercising what it claims.
#ifndef QATK_NO_METRICS
  EXPECT_GT(blocks_skipped->Value(), skipped_before)
      << "no block was ever skipped: the sliced corpora no longer trigger "
      << "pruning";
#else
  (void)blocks_skipped;
  (void)skipped_before;
#endif
}

TEST_F(ClusterEquivalenceTest, ShardTopKProbeDoesNotScoreUnknownParts) {
  auto shards = TrainShards("hash", 3);
  auto sharder = MakeSharder("hash", 3);
  kb::DataBundle probe = corpus_->bundles[0];
  probe.part_id = "NO-SUCH-PART";
  // Every shard answers the owner probe with known=false and no items.
  for (const auto& shard : shards) {
    auto partial = shard->ShardTopK(probe, /*fallback=*/false);
    ASSERT_TRUE(partial.ok()) << partial.status();
    EXPECT_FALSE(partial.ValueOrDie().known_part);
    EXPECT_TRUE(partial.ValueOrDie().items.empty());
  }
  // A shard that does not own a *known* part also reports known=false:
  // ownership is exact, not best-effort.
  const std::string& owned = corpus_->bundles[0].part_id;
  const uint32_t owner = sharder->ShardFor(owned);
  for (uint32_t i = 0; i < 3; ++i) {
    auto partial = shards[i]->ShardTopK(corpus_->bundles[0], false);
    ASSERT_TRUE(partial.ok());
    EXPECT_EQ(partial.ValueOrDie().known_part, i == owner);
  }
}

TEST_F(ClusterEquivalenceTest, ConfirmWithGlobalOrdinalKeepsEquivalence) {
  // A confirmed assignment routed to the owner with a coordinator-style
  // global ordinal must leave the cluster bit-identical to a single node
  // that absorbed the same confirm.
  auto shards = TrainShards("hash", 3);
  auto sharder = MakeSharder("hash", 3);
  // Ordinal counters agree across shards (every shard counts the whole
  // corpus) and match the single-node high-water mark.
  const uint64_t base = shards[0]->ordinal_high();
  for (const auto& shard : shards) {
    EXPECT_EQ(shard->ordinal_high(), base);
  }

  // Fresh single-node reference so the suite-wide one stays pristine.
  RecommendationService local(&world_->taxonomy(),
                              RecommendationService::Options{});
  ASSERT_TRUE(local.Train(*corpus_).ok());
  EXPECT_EQ(local.ordinal_high(), base);

  uint64_t next = base;
  for (int i = 0; i < 3; ++i) {
    kb::DataBundle confirm = corpus_->bundles[50 + i * 31];
    confirm.reference_number = "CONFIRM-" + std::to_string(i);
    confirm.mechanic_report += " confirmed follow-up " + std::to_string(i);
    const std::string code = corpus_->bundles[200 + i].error_code;
    ASSERT_TRUE(local.ConfirmAssignment(confirm, code).ok());
    const uint32_t owner = sharder->ShardFor(confirm.part_id);
    ASSERT_TRUE(shards[owner]
                    ->ConfirmAssignment(confirm, code,
                                        static_cast<int64_t>(next++))
                    .ok());
    // Non-owners refuse the mutation: routing bugs surface loudly.
    ASSERT_FALSE(shards[(owner + 1) % 3]
                     ->ConfirmAssignment(confirm, code)
                     .ok());
  }

  size_t mismatches = 0;
  for (const auto& bundle : corpus_->bundles) {
    auto want = local.Recommend(bundle);
    ASSERT_TRUE(want.ok());
    auto got = ClusterRecommend(shards, *sharder, bundle);
    if (!SameRecommendation(want.ValueOrDie(), got)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Wire-level: real shard servers behind a Coordinator front end.

class ClusterWireTest : public ClusterEquivalenceTest {
 protected:
  void StartCluster(uint32_t n) {
    shards_ = TrainShards("hash", n);
    Coordinator::Options options;
    for (auto& shard : shards_) {
      auto server = std::make_unique<server::Server>(
          shard.get(), server::Server::Options{.port = 0, .threads = 1});
      ASSERT_TRUE(server->Start().ok());
      options.shards.push_back(ShardEndpoint{"127.0.0.1", server->port()});
      shard_servers_.push_back(std::move(server));
    }
    coordinator_ = std::make_unique<Coordinator>(std::move(options));
    ASSERT_TRUE(coordinator_->Connect().ok());
    front_ = std::make_unique<server::Server>(
        coordinator_.get(), server::Server::Options{.port = 0, .threads = 2});
    ASSERT_TRUE(front_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", front_->port()).ok());
  }

  void TearDown() override {
    client_.Close();
    if (front_) {
      EXPECT_TRUE(front_->Drain().ok());
    }
    front_.reset();
    coordinator_.reset();
    for (auto& server : shard_servers_) {
      EXPECT_TRUE(server->Drain().ok());
    }
    shard_servers_.clear();
    shards_.clear();
  }

  /// Runs the same request against the front end (wire) and the reference
  /// service (in-process Dispatch) and requires byte-identical results.
  void ExpectMatchesReference(int64_t id, const std::string& method,
                              Json params) {
    server::Request request;
    request.id = id;
    request.method_name = method;
    request.method = server::MethodFromString(method);
    request.params = params;
    server::Response want = server::Dispatch(reference_, request);
    auto got = client_.Call(id, method, std::move(params));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(static_cast<int>(got->code), static_cast<int>(want.code))
        << method << ": " << got->message;
    EXPECT_EQ(got->result.Dump(), want.result.Dump()) << method;
  }

  std::vector<std::unique_ptr<RecommendationService>> shards_;
  std::vector<std::unique_ptr<server::Server>> shard_servers_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<server::Server> front_;
  server::Client client_;
};

TEST_F(ClusterWireTest, FrontEndMatchesSingleNodeOverTheWire) {
  StartCluster(3);
  int64_t id = 1;
  for (size_t i = 0; i < corpus_->bundles.size(); i += 7) {
    ExpectMatchesReference(id++, "Recommend",
                           server::BundleToParams(corpus_->bundles[i]));
  }
  // Unknown part: the coordinator's fallback scatter must match the
  // single-node all-nodes sweep.
  kb::DataBundle unknown = corpus_->bundles[3];
  unknown.part_id = "ZZ-UNKNOWN-WIRE";
  ExpectMatchesReference(id++, "Recommend", server::BundleToParams(unknown));

  // RecommendForText routes through the same two-round path.
  Json text_params = Json::Object();
  text_params.Set("part_id", Json(corpus_->bundles[5].part_id));
  text_params.Set("text", Json(corpus_->bundles[9].mechanic_report));
  ExpectMatchesReference(id++, "RecommendForText", text_params);

  // FullListForPart is an owner passthrough.
  for (size_t i = 0; i < 12; ++i) {
    Json params = Json::Object();
    params.Set("part_id", Json(corpus_->bundles[i * 11].part_id));
    ExpectMatchesReference(id++, "FullListForPart", params);
  }

  // DescribeCode scatters; every trained code resolves somewhere.
  Json describe = Json::Object();
  describe.Set("code", Json(corpus_->bundles[0].error_code));
  ExpectMatchesReference(id++, "DescribeCode", describe);
}

TEST_F(ClusterWireTest, FrontEndHealthStatsAndShardMethodPolicy) {
  StartCluster(3);
  auto health = client_.Call(1, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();
  ASSERT_TRUE(health->ok()) << health->message;
  EXPECT_TRUE(health->result.GetBool("trained", false));
  const Json* cluster = health->result.Find("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->GetInt("shards", -1), 3);
  EXPECT_EQ(cluster->GetString("sharder"), "hash");

  auto stats = client_.Call(2, "Stats", Json::Object());
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_NE(stats->result.Find("cluster"), nullptr);

  // Shard-internal RPCs are not part of the public front-end surface.
  Json params = Json::Object();
  params.Set("part_id", Json(corpus_->bundles[0].part_id));
  params.Set("mechanic_report", Json("engine stalls"));
  params.Set("fallback", Json(false));
  auto shard_query = client_.Call(3, "ShardQuery", params);
  ASSERT_TRUE(shard_query.ok()) << shard_query.status();
  EXPECT_EQ(shard_query->code, StatusCode::kInvalid);

  // Shard servers *do* expose their shard identity in Health.
  server::Client direct;
  ASSERT_TRUE(direct.Connect("127.0.0.1", shard_servers_[1]->port()).ok());
  auto shard_health = direct.Call(4, "Health", Json::Object());
  ASSERT_TRUE(shard_health.ok()) << shard_health.status();
  const Json* shard_info = shard_health->result.Find("shard");
  ASSERT_NE(shard_info, nullptr);
  EXPECT_EQ(shard_info->GetInt("index", -1), 1);
  EXPECT_EQ(shard_info->GetInt("shards", -1), 3);
  EXPECT_EQ(shard_info->GetString("sharder"), "hash");
}

TEST_F(ClusterWireTest, MutationsRouteToOwnersAndStayConsistent) {
  StartCluster(3);
  const uint64_t base = coordinator_->next_ordinal();
  EXPECT_EQ(base, shards_[0]->ordinal_high());

  // DefineErrorCode lands on the part's owner and is visible via the
  // scattering DescribeCode afterwards.
  const std::string part = corpus_->bundles[0].part_id;
  Json define = Json::Object();
  define.Set("part_id", Json(part));
  define.Set("code", Json("ZXW1"));
  define.Set("description", Json("test-defined code"));
  auto defined = client_.Call(1, "DefineErrorCode", define);
  ASSERT_TRUE(defined.ok()) << defined.status();
  ASSERT_TRUE(defined->ok()) << defined->message;

  Json describe = Json::Object();
  describe.Set("code", Json("ZXW1"));
  auto described = client_.Call(2, "DescribeCode", describe);
  ASSERT_TRUE(described.ok()) << described.status();
  ASSERT_TRUE(described->ok()) << described->message;
  EXPECT_EQ(described->result.GetString("description"), "test-defined code");

  // Conflicting re-definition on a *different* part is refused even though
  // that part lives on another shard (the cross-shard conflict scatter).
  std::string other_part;
  auto sharder = MakeSharder("hash", 3);
  for (const auto& bundle : corpus_->bundles) {
    if (sharder->ShardFor(bundle.part_id) != sharder->ShardFor(part)) {
      other_part = bundle.part_id;
      break;
    }
  }
  ASSERT_FALSE(other_part.empty());
  Json conflict = Json::Object();
  conflict.Set("part_id", Json(other_part));
  conflict.Set("code", Json("ZXW1"));
  conflict.Set("description", Json("a different description"));
  auto refused = client_.Call(3, "DefineErrorCode", conflict);
  ASSERT_TRUE(refused.ok()) << refused.status();
  EXPECT_EQ(refused->code, StatusCode::kAlreadyExists) << refused->message;

  // ConfirmAssignment consumes a coordinator ordinal and reaches the
  // owning shard's knowledge base.
  kb::DataBundle confirm = corpus_->bundles[10];
  confirm.reference_number = "WIRE-CONFIRM-1";
  confirm.mechanic_report += " wire confirm";
  Json confirm_params = server::BundleToParams(confirm);
  confirm_params.Set("error_code", Json(corpus_->bundles[20].error_code));
  auto confirmed = client_.Call(4, "ConfirmAssignment", confirm_params);
  ASSERT_TRUE(confirmed.ok()) << confirmed.status();
  ASSERT_TRUE(confirmed->ok()) << confirmed->message;
  EXPECT_EQ(coordinator_->next_ordinal(), base + 1);
  const uint32_t owner = sharder->ShardFor(confirm.part_id);
  EXPECT_EQ(shards_[owner]->ordinal_high(), base + 1);

  // The confirmed observation influences subsequent recommendations the
  // same way it would on a single node that absorbed the same confirm.
  RecommendationService local(&world_->taxonomy(),
                              RecommendationService::Options{});
  ASSERT_TRUE(local.Train(*corpus_).ok());
  ASSERT_TRUE(local
                  .ConfirmAssignment(confirm,
                                     corpus_->bundles[20].error_code)
                  .ok());
  auto want = local.Recommend(confirm);
  ASSERT_TRUE(want.ok());
  auto got = client_.Call(5, "Recommend", server::BundleToParams(confirm));
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got->ok()) << got->message;
  EXPECT_EQ(got->result.Dump(),
            server::RecommendationToJson(want.ValueOrDie()).Dump());
}

TEST_F(ClusterWireTest, CoordinatorSurvivesAShardRestart) {
  StartCluster(2);
  ExpectMatchesReference(1, "Recommend",
                         server::BundleToParams(corpus_->bundles[0]));

  // Kill shard 1's server and bring a new one up on the same port; the
  // coordinator's pooled channels are stale and must reconnect via
  // CallWithRetry.
  const uint16_t port = shard_servers_[1]->port();
  ASSERT_TRUE(shard_servers_[1]->Drain().ok());
  shard_servers_[1] = std::make_unique<server::Server>(
      shards_[1].get(),
      server::Server::Options{.port = port, .threads = 1});
  ASSERT_TRUE(shard_servers_[1]->Start().ok());

  for (size_t i = 0; i < 20; ++i) {
    ExpectMatchesReference(static_cast<int64_t>(100 + i), "Recommend",
                           server::BundleToParams(corpus_->bundles[i]));
  }
}

// ---------------------------------------------------------------------------
// Client reconnect (satellite: connect timeout + retry-on-unavailable).

TEST_F(ClusterEquivalenceTest, ClientCallWithRetryReconnectsAfterRestart) {
  server::Server first(reference_, server::Server::Options{.port = 0});
  ASSERT_TRUE(first.Start().ok());
  const uint16_t port = first.port();

  server::Client client;
  RetryPolicy::Options retry;
  retry.max_attempts = 5;
  retry.base_backoff = std::chrono::microseconds(2000);
  client.set_retry_policy(RetryPolicy(retry));
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  auto health = client.Call(1, "Health", Json::Object());
  ASSERT_TRUE(health.ok()) << health.status();

  ASSERT_TRUE(first.Drain().ok());
  server::Server second(reference_, server::Server::Options{.port = port});
  ASSERT_TRUE(second.Start().ok());

  // The pooled connection is dead; CallWithRetry must reconnect to the
  // remembered endpoint and succeed.
  auto retried = client.CallWithRetry(2, "Health", Json::Object());
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_TRUE(retried->ok()) << retried->message;
  EXPECT_TRUE(second.Drain().ok());
}

}  // namespace
}  // namespace qatk::cluster
