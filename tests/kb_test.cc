#include <gtest/gtest.h>

#include "kb/data_bundle.h"
#include "kb/features.h"
#include "kb/kb_store.h"
#include "kb/knowledge_base.h"
#include "storage/database.h"
#include "taxonomy/taxonomy.h"

namespace qatk::kb {
namespace {

using text::Language;

DataBundle MakeBundle(const std::string& ref, const std::string& part,
                      const std::string& code) {
  DataBundle bundle;
  bundle.reference_number = ref;
  bundle.article_code = "A1";
  bundle.part_id = part;
  bundle.error_code = code;
  bundle.responsibility_code = "R1";
  bundle.mechanic_report = "mechanic text for " + ref;
  bundle.supplier_report = "supplier text for " + ref;
  bundle.final_oem_report = "final text for " + ref;
  return bundle;
}

tax::Taxonomy SmallTaxonomy() {
  tax::Taxonomy taxonomy;
  tax::Concept fan;
  fan.id = 101;
  fan.category = tax::Category::kComponent;
  fan.label = "Fan";
  fan.synonyms[Language::kEnglish] = {"fan", "blower"};
  fan.synonyms[Language::kGerman] = {"Lüfter"};
  QATK_CHECK_OK(taxonomy.Add(std::move(fan)));
  tax::Concept noise;
  noise.id = 201;
  noise.category = tax::Category::kSymptom;
  noise.label = "Noise";
  noise.synonyms[Language::kEnglish] = {"noise", "humming sound"};
  QATK_CHECK_OK(taxonomy.Add(std::move(noise)));
  return taxonomy;
}

// ---------------------------------------------------------------------------
// DataBundle / Corpus
// ---------------------------------------------------------------------------

TEST(CorpusTest, SingletonAccounting) {
  Corpus corpus;
  corpus.bundles.push_back(MakeBundle("r1", "P1", "E1"));
  corpus.bundles.push_back(MakeBundle("r2", "P1", "E1"));
  corpus.bundles.push_back(MakeBundle("r3", "P1", "E2"));
  corpus.bundles.push_back(MakeBundle("r4", "P2", "E3"));
  corpus.bundles.push_back(MakeBundle("r5", "P2", "E3"));
  EXPECT_EQ(corpus.CountDistinctErrorCodes(), 3u);
  EXPECT_EQ(corpus.CountSingletonErrorCodes(), 1u);
  auto learnable = corpus.LearnableBundles();
  ASSERT_EQ(learnable.size(), 4u);
  for (const DataBundle* b : learnable) {
    EXPECT_NE(b->error_code, "E2");
  }
}

TEST(CorpusTest, EmptyCorpus) {
  Corpus corpus;
  EXPECT_EQ(corpus.CountDistinctErrorCodes(), 0u);
  EXPECT_EQ(corpus.CountSingletonErrorCodes(), 0u);
  EXPECT_TRUE(corpus.LearnableBundles().empty());
}

TEST(ComposeDocumentTest, MaskSelectsSources) {
  Corpus corpus;
  DataBundle bundle = MakeBundle("r1", "P1", "E1");
  bundle.initial_oem_report = "initial text";
  corpus.part_descriptions["P1"] = "part description";
  corpus.error_descriptions["E1"] = "error description";

  std::string all = ComposeDocument(bundle, kTrainSources, corpus);
  EXPECT_NE(all.find("mechanic text"), std::string::npos);
  EXPECT_NE(all.find("initial text"), std::string::npos);
  EXPECT_NE(all.find("supplier text"), std::string::npos);
  EXPECT_NE(all.find("final text"), std::string::npos);
  EXPECT_NE(all.find("part description"), std::string::npos);
  EXPECT_NE(all.find("error description"), std::string::npos);

  std::string test = ComposeDocument(bundle, kTestSources, corpus);
  EXPECT_NE(test.find("mechanic text"), std::string::npos);
  EXPECT_EQ(test.find("final text"), std::string::npos)
      << "final report must be unavailable at test time";
  EXPECT_EQ(test.find("error description"), std::string::npos);

  std::string mech = ComposeDocument(bundle, kMechanicOnly, corpus);
  EXPECT_NE(mech.find("mechanic text"), std::string::npos);
  EXPECT_EQ(mech.find("supplier text"), std::string::npos);
}

TEST(ComposeDocumentTest, MissingSourcesSkipped) {
  Corpus corpus;
  DataBundle bundle = MakeBundle("r1", "P1", "E1");
  bundle.initial_oem_report.clear();
  std::string doc = ComposeDocument(bundle, kTrainSources, corpus);
  EXPECT_FALSE(doc.empty());
  // No description catalogs registered: no crash, just skipped.
}

// ---------------------------------------------------------------------------
// FeatureVocabulary
// ---------------------------------------------------------------------------

TEST(FeatureVocabularyTest, InternIsIdempotent) {
  FeatureVocabulary vocabulary;
  int64_t a = vocabulary.Intern("defekt");
  int64_t b = vocabulary.Intern("kaputt");
  EXPECT_EQ(vocabulary.Intern("defekt"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(vocabulary.size(), 2u);
}

TEST(FeatureVocabularyTest, LookupDoesNotGrow) {
  FeatureVocabulary vocabulary;
  vocabulary.Intern("known");
  EXPECT_EQ(vocabulary.Lookup("known"), 0);
  EXPECT_EQ(vocabulary.Lookup("unknown"), -1);
  EXPECT_EQ(vocabulary.size(), 1u);
}

TEST(FeatureVocabularyTest, WordOfInverse) {
  FeatureVocabulary vocabulary;
  int64_t id = vocabulary.Intern("luefter");
  EXPECT_EQ(*vocabulary.WordOf(id), "luefter");
  EXPECT_TRUE(vocabulary.WordOf(999).status().IsKeyError());
  EXPECT_TRUE(vocabulary.WordOf(-1).status().IsKeyError());
}

TEST(FeatureVocabularyTest, RestoreRoundTrip) {
  FeatureVocabulary original;
  original.Intern("a");
  original.Intern("b");
  original.Intern("c");
  FeatureVocabulary restored;
  for (const auto& [word, id] : original.Entries()) {
    ASSERT_TRUE(restored.Restore(word, id).ok());
  }
  EXPECT_EQ(restored.Lookup("b"), original.Lookup("b"));
  EXPECT_TRUE(restored.Restore("b", 5).IsAlreadyExists());
  EXPECT_TRUE(restored.Restore("z", 7).IsInvalid()) << "non-dense id";
}

// ---------------------------------------------------------------------------
// FeatureExtractor
// ---------------------------------------------------------------------------

TEST(FeatureExtractorTest, BagOfWordsSortedUnique) {
  FeatureVocabulary vocabulary;
  FeatureExtractor extractor(FeatureModel::kBagOfWords, nullptr,
                             &vocabulary);
  auto features = extractor.Extract("the fan the fan broke");
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->size(), 3u);  // the, fan, broke.
  EXPECT_TRUE(std::is_sorted(features->begin(), features->end()));
  EXPECT_EQ(extractor.last_mention_count(), 5u);
}

TEST(FeatureExtractorTest, StopwordVariantDropsFunctionWords) {
  FeatureVocabulary vocabulary;
  FeatureExtractor extractor(FeatureModel::kBagOfWordsNoStop, nullptr,
                             &vocabulary);
  auto features = extractor.Extract("the fan is broken");
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->size(), 2u);  // fan, broken.
}

TEST(FeatureExtractorTest, BagOfConceptsUsesTaxonomy) {
  tax::Taxonomy taxonomy = SmallTaxonomy();
  FeatureVocabulary vocabulary;
  FeatureExtractor extractor(FeatureModel::kBagOfConcepts, &taxonomy,
                             &vocabulary);
  auto features = extractor.Extract("the blower makes a humming sound");
  ASSERT_TRUE(features.ok());
  ASSERT_EQ(features->size(), 2u);
  EXPECT_EQ((*features)[0], 101);
  EXPECT_EQ((*features)[1], 201);
}

TEST(FeatureExtractorTest, FrozenVocabularyDropsUnseenWords) {
  FeatureVocabulary vocabulary;
  {
    FeatureExtractor train(FeatureModel::kBagOfWords, nullptr, &vocabulary);
    ASSERT_TRUE(train.Extract("fan broken").ok());
  }
  FeatureExtractor test(FeatureModel::kBagOfWords, nullptr, &vocabulary,
                        /*frozen_vocabulary=*/true);
  auto features = test.Extract("fan totally novel words");
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->size(), 1u);  // Only "fan" is known.
  EXPECT_EQ(vocabulary.size(), 2u) << "frozen extraction must not intern";
}

TEST(FeatureExtractorTest, GermanFoldingUnifiesSpellings) {
  FeatureVocabulary vocabulary;
  FeatureExtractor extractor(FeatureModel::kBagOfWords, nullptr,
                             &vocabulary);
  auto a = extractor.Extract("Lüfter");
  auto b = extractor.Extract("LUEFTER");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(FeatureExtractorTest, EmptyDocument) {
  FeatureVocabulary vocabulary;
  FeatureExtractor extractor(FeatureModel::kBagOfWords, nullptr,
                             &vocabulary);
  auto features = extractor.Extract("");
  ASSERT_TRUE(features.ok());
  EXPECT_TRUE(features->empty());
}

// ---------------------------------------------------------------------------
// KnowledgeBase
// ---------------------------------------------------------------------------

TEST(KnowledgeBaseTest, IdenticalConfigurationsMerge) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2, 3});
  knowledge.AddInstance("P1", "E1", {1, 2, 3});
  knowledge.AddInstance("P1", "E1", {1, 2, 4});
  EXPECT_EQ(knowledge.num_nodes(), 2u);
  EXPECT_EQ(knowledge.num_instances(), 3u);
  EXPECT_EQ(knowledge.nodes()[0].instance_count, 2u);
}

TEST(KnowledgeBaseTest, DifferentCodesSameFeaturesStayDistinct) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2});
  knowledge.AddInstance("P1", "E2", {1, 2});
  EXPECT_EQ(knowledge.num_nodes(), 2u);
}

TEST(KnowledgeBaseTest, CandidateSelectionFiltersByPartAndFeature) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2});
  knowledge.AddInstance("P1", "E2", {3, 4});
  knowledge.AddInstance("P2", "E3", {1, 2});

  auto candidates = knowledge.SelectCandidates("P1", {2, 9});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->error_code, "E1");

  EXPECT_TRUE(knowledge.SelectCandidates("P1", {99}).empty());
  EXPECT_EQ(knowledge.SelectCandidates("P1", {1, 3}).size(), 2u);
}

TEST(KnowledgeBaseTest, UnknownPartFallsBackToAllNodes) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1});
  knowledge.AddInstance("P2", "E2", {2});
  auto candidates = knowledge.SelectCandidates("P99", {1});
  EXPECT_EQ(candidates.size(), 2u) << "Fig. 5: unknown part -> all nodes";
}

TEST(KnowledgeBaseTest, CandidatesAreDeduplicated) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2, 3});
  // Probe shares three features with the single node; it must appear once.
  auto candidates = knowledge.SelectCandidates("P1", {1, 2, 3});
  EXPECT_EQ(candidates.size(), 1u);
}

TEST(KnowledgeBaseTest, SeparatorBytesInIdsDoNotCollideConfigurations) {
  // The config key length-prefixes the free-form ids, so an id containing
  // the old '\x1f' separator can never shift the boundary between part id
  // and error code.
  KnowledgeBase knowledge;
  knowledge.AddInstance("a\x1f" "b", "c", {1});
  knowledge.AddInstance("a", "b\x1f" "c", {1});
  EXPECT_EQ(knowledge.num_nodes(), 2u);
  EXPECT_EQ(knowledge.NodesForPart("a").size(), 1u);
  EXPECT_EQ(knowledge.NodesForPart("a\x1f" "b").size(), 1u);
}

TEST(KnowledgeBaseTest, LengthPrefixedIdsWithDigitsStayDistinct) {
  // "1" + "2:..." style ids must not alias the length prefixes themselves.
  KnowledgeBase knowledge;
  knowledge.AddInstance("1", "23", {});
  knowledge.AddInstance("12", "3", {});
  knowledge.AddInstance("", "123", {});
  EXPECT_EQ(knowledge.num_nodes(), 3u);
}

TEST(KnowledgeBaseTest, ManySharedFeaturesStillDeduplicateLinearly) {
  // Exercises the k-way merge across several posting lists with heavy
  // overlap: every node shares every probe feature.
  KnowledgeBase knowledge;
  for (int n = 0; n < 5; ++n) {
    knowledge.AddInstance("P1", "E" + std::to_string(n), {1, 2, 3, 4});
  }
  auto candidates = knowledge.SelectCandidates("P1", {1, 2, 3, 4});
  ASSERT_EQ(candidates.size(), 5u);
  for (int n = 0; n < 5; ++n) {
    EXPECT_EQ(candidates[n]->error_code, "E" + std::to_string(n))
        << "candidates must stay in knowledge-base insertion order";
  }
}

TEST(KnowledgeBaseTest, NodesForPart) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1});
  knowledge.AddInstance("P1", "E2", {2});
  knowledge.AddInstance("P2", "E3", {3});
  EXPECT_EQ(knowledge.NodesForPart("P1").size(), 2u);
  EXPECT_TRUE(knowledge.NodesForPart("P9").empty());
  EXPECT_TRUE(knowledge.HasPart("P1"));
  EXPECT_FALSE(knowledge.HasPart("P9"));
}

// ---------------------------------------------------------------------------
// KbStore (QDB persistence)
// ---------------------------------------------------------------------------

class KbStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = db::Database::OpenInMemory(512);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    store_ = std::make_unique<KbStore>(db_.get(), "test");
  }

  std::unique_ptr<db::Database> db_;
  std::unique_ptr<KbStore> store_;
};

TEST_F(KbStoreTest, CorpusRoundTrip) {
  Corpus corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.bundles.push_back(MakeBundle("REF" + std::to_string(i),
                                        "P" + std::to_string(i % 3),
                                        "E" + std::to_string(i % 5)));
  }
  corpus.bundles[3].initial_oem_report = "optional initial";
  corpus.part_descriptions["P0"] = "desc p0";
  corpus.error_descriptions["E1"] = "desc e1";
  ASSERT_TRUE(store_->SaveCorpus(corpus).ok());

  auto loaded = store_->LoadCorpus();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->bundles.size(), 20u);
  EXPECT_EQ(loaded->part_descriptions.at("P0"), "desc p0");
  EXPECT_EQ(loaded->error_descriptions.at("E1"), "desc e1");

  auto bundle = store_->FindBundle("REF3");
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->initial_oem_report, "optional initial");
  EXPECT_TRUE(store_->FindBundle("NOPE").status().IsKeyError());
}

TEST_F(KbStoreTest, KnowledgeBaseRoundTrip) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2, 3});
  knowledge.AddInstance("P1", "E1", {1, 2, 3});  // Merge.
  knowledge.AddInstance("P1", "E2", {3, 4});
  knowledge.AddInstance("P2", "E3", {5});
  FeatureVocabulary vocabulary;
  vocabulary.Intern("alpha");
  vocabulary.Intern("beta");
  ASSERT_TRUE(store_->SaveKnowledgeBase(knowledge, vocabulary).ok());

  auto loaded = store_->LoadKnowledgeBase();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), 3u);
  EXPECT_EQ(loaded->num_instances(), 4u);
  auto candidates = loaded->SelectCandidates("P1", {3});
  EXPECT_EQ(candidates.size(), 2u);

  auto vocab = store_->LoadVocabulary();
  ASSERT_TRUE(vocab.ok());
  EXPECT_EQ(vocab->Lookup("beta"), 1);
}

TEST_F(KbStoreTest, OnTheFlyCandidatesMatchInMemory) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P1", "E1", {1, 2});
  knowledge.AddInstance("P1", "E2", {2, 3});
  knowledge.AddInstance("P1", "E3", {7});
  knowledge.AddInstance("P2", "E4", {1});
  FeatureVocabulary vocabulary;
  ASSERT_TRUE(store_->SaveKnowledgeBase(knowledge, vocabulary).ok());

  auto from_db = store_->SelectCandidatesFromDb("P1", {2, 9});
  ASSERT_TRUE(from_db.ok()) << from_db.status();
  auto in_memory = knowledge.SelectCandidates("P1", {2, 9});
  ASSERT_EQ(from_db->size(), in_memory.size());
  ASSERT_EQ(from_db->size(), 2u);
  for (size_t i = 0; i < from_db->size(); ++i) {
    EXPECT_EQ((*from_db)[i].error_code, in_memory[i]->error_code);
    EXPECT_EQ((*from_db)[i].features, in_memory[i]->features);
  }
}

TEST_F(KbStoreTest, RecommendationsRoundTrip) {
  ASSERT_TRUE(
      store_->SaveRecommendations("REF1", {{"E5", 0.9}, {"E2", 0.4}}).ok());
  ASSERT_TRUE(store_->SaveRecommendations("REF2", {{"E1", 1.0}}).ok());
  auto recs = store_->LoadRecommendations("REF1");
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 2u);
  EXPECT_EQ((*recs)[0].first, "E5");
  EXPECT_DOUBLE_EQ((*recs)[0].second, 0.9);
  EXPECT_EQ((*recs)[1].first, "E2");
}

}  // namespace
}  // namespace qatk::kb
