#include "kb/frozen_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/classifier.h"
#include "kb/knowledge_base.h"

namespace qatk::kb {
namespace {

constexpr core::SimilarityMeasure kAllMeasures[] = {
    core::SimilarityMeasure::kJaccard,
    core::SimilarityMeasure::kOverlap,
    core::SimilarityMeasure::kDice,
    core::SimilarityMeasure::kCosine,
};

/// Sorted, deduplicated feature set of size <= max_size over [0, domain).
std::vector<int64_t> RandomFeatureSet(Rng* rng, size_t max_size,
                                      int64_t domain) {
  std::set<int64_t> unique;
  const size_t size = rng->NextBounded(max_size + 1);
  for (size_t i = 0; i < size; ++i) {
    unique.insert(static_cast<int64_t>(rng->NextBounded(domain)));
  }
  return {unique.begin(), unique.end()};
}

/// Asserts the indexed path reproduces the brute-force path bit for bit:
/// same codes, same order, same score doubles, same candidate count — with
/// the pruned (default) and unpruned top-k paths both checked.
void ExpectEquivalent(const KnowledgeBase& knowledge, const FrozenIndex& index,
                      FrozenIndex::Scratch* scratch,
                      const std::string& part_id,
                      const std::vector<int64_t>& features, size_t max_nodes) {
  for (core::SimilarityMeasure measure : kAllMeasures) {
    for (bool prune : {true, false}) {
      core::RankedKnnClassifier classifier({measure, max_nodes, prune});
      std::vector<core::ScoredCode> brute =
          classifier.Classify(knowledge, part_id, features);
      size_t num_candidates = 0;
      std::vector<core::ScoredCode> indexed =
          classifier.Classify(index, part_id, features, scratch,
                              &num_candidates);
      // These corpora have no run spanning a full posting block, so the
      // pruned path never skips and the touched set is the exact brute
      // candidate set on both paths.
      ASSERT_EQ(knowledge.SelectCandidates(part_id, features).size(),
                num_candidates)
          << "candidate-count mismatch, part=" << part_id;
      ASSERT_EQ(brute.size(), indexed.size())
          << "rank-length mismatch, measure="
          << core::SimilarityMeasureToString(measure) << " part=" << part_id
          << " prune=" << prune;
      for (size_t i = 0; i < brute.size(); ++i) {
        ASSERT_EQ(brute[i].error_code, indexed[i].error_code)
            << "code mismatch at rank " << i << ", measure="
            << core::SimilarityMeasureToString(measure)
            << " prune=" << prune;
        // Bit-identical, not approximately equal: both paths must perform
        // the same double operations on the same (shared, |A|, |B|) counts.
        ASSERT_EQ(brute[i].score, indexed[i].score)
            << "score mismatch at rank " << i << ", measure="
            << core::SimilarityMeasureToString(measure)
            << " prune=" << prune;
      }
    }
  }
}

TEST(FrozenIndexTest, EmptyKnowledgeBase) {
  KnowledgeBase knowledge;
  FrozenIndex index = FrozenIndex::Build(knowledge);
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_EQ(index.num_postings(), 0u);
  FrozenIndex::Scratch scratch;
  ExpectEquivalent(knowledge, index, &scratch, "P0", {1, 2, 3}, 25);
  ExpectEquivalent(knowledge, index, &scratch, "P0", {}, 25);
}

TEST(FrozenIndexTest, SnapshotsNodesAndArena) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P0", "E0", {3, 7, 9});
  knowledge.AddInstance("P0", "E1", {7});
  knowledge.AddInstance("P1", "E0", {});
  FrozenIndex index = FrozenIndex::Build(knowledge);
  ASSERT_EQ(index.num_nodes(), 3u);
  EXPECT_EQ(index.num_parts(), 2u);
  EXPECT_EQ(index.num_postings(), 4u);
  EXPECT_EQ(index.node_feature_count(0), 3u);
  EXPECT_EQ(index.node_feature_count(2), 0u);
  EXPECT_EQ(index.node_error_code(0), "E0");
  EXPECT_EQ(index.node_error_code(1), "E1");
  // Equal codes intern to equal ids across nodes.
  EXPECT_EQ(index.node_code_id(0), index.node_code_id(2));
  auto [begin, end] = index.node_features(0);
  EXPECT_EQ(std::vector<int64_t>(begin, end),
            (std::vector<int64_t>{3, 7, 9}));
  EXPECT_TRUE(index.HasPart("P1"));
  EXPECT_FALSE(index.HasPart("P2"));
}

TEST(FrozenIndexTest, KnownPartWithoutSharedFeatureIsEmptyNotAllNodes) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P0", "E0", {1, 2});
  knowledge.AddInstance("P1", "E1", {5});
  FrozenIndex index = FrozenIndex::Build(knowledge);
  FrozenIndex::Scratch scratch;
  // P0 is known but shares nothing with {5}: empty candidate set, not the
  // unknown-part all-nodes fallback.
  EXPECT_TRUE(index.AccumulateShared("P0", {5}, &scratch));
  EXPECT_TRUE(scratch.touched.empty());
  ExpectEquivalent(knowledge, index, &scratch, "P0", {5}, 25);
}

TEST(FrozenIndexTest, PartWhoseOnlyNodeHasNoFeaturesStaysKnown) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P0", "E0", {});
  knowledge.AddInstance("P1", "E1", {1});
  FrozenIndex index = FrozenIndex::Build(knowledge);
  FrozenIndex::Scratch scratch;
  EXPECT_TRUE(index.AccumulateShared("P0", {1}, &scratch));
  EXPECT_TRUE(scratch.touched.empty());
  ExpectEquivalent(knowledge, index, &scratch, "P0", {1}, 25);
}

TEST(FrozenIndexTest, UnknownPartRanksEveryNodeIncludingZeroScores) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P0", "E0", {1});
  knowledge.AddInstance("P1", "E1", {2});
  knowledge.AddInstance("P2", "E2", {3});
  FrozenIndex index = FrozenIndex::Build(knowledge);
  FrozenIndex::Scratch scratch;
  core::RankedKnnClassifier classifier(
      {core::SimilarityMeasure::kJaccard, 25});
  std::vector<core::ScoredCode> ranked =
      classifier.Classify(index, "GHOST", {1}, &scratch);
  // The matching node wins; the zero-score nodes still fill the tail in
  // arrival order.
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].error_code, "E0");
  EXPECT_GT(ranked[0].score, 0.0);
  EXPECT_EQ(ranked[1].error_code, "E1");
  EXPECT_EQ(ranked[1].score, 0.0);
  EXPECT_EQ(ranked[2].error_code, "E2");
  ExpectEquivalent(knowledge, index, &scratch, "GHOST", {1}, 25);
}

TEST(FrozenIndexTest, ScratchSurvivesReuseAcrossIndexesOfDifferentSizes) {
  FrozenIndex::Scratch scratch;
  KnowledgeBase big;
  for (int i = 0; i < 40; ++i) {
    big.AddInstance("P0", "E" + std::to_string(i % 5),
                    {i % 7, 10 + i % 3, 20 + i});
  }
  FrozenIndex big_index = FrozenIndex::Build(big);
  ExpectEquivalent(big, big_index, &scratch, "P0", {0, 10, 21}, 25);

  KnowledgeBase small;
  small.AddInstance("P0", "E0", {1, 2});
  FrozenIndex small_index = FrozenIndex::Build(small);
  ExpectEquivalent(small, small_index, &scratch, "P0", {2}, 25);

  // Back to the larger index: the scratch re-sizes and re-stamps cleanly.
  ExpectEquivalent(big, big_index, &scratch, "P0", {10, 12}, 25);
}

TEST(FrozenIndexTest, RepeatedQueriesDoNotLeakStateAcrossEpochs) {
  KnowledgeBase knowledge;
  knowledge.AddInstance("P0", "E0", {1, 2, 3});
  knowledge.AddInstance("P0", "E1", {3, 4});
  FrozenIndex index = FrozenIndex::Build(knowledge);
  FrozenIndex::Scratch scratch;
  for (int i = 0; i < 50; ++i) {
    ExpectEquivalent(knowledge, index, &scratch, "P0", {1, 3}, 25);
    ExpectEquivalent(knowledge, index, &scratch, "P0", {4}, 25);
    ExpectEquivalent(knowledge, index, &scratch, "P0", {}, 25);
  }
}

/// The tentpole guarantee: over randomized corpora, the frozen-index
/// rankings are byte-identical to the brute-force RankedKnnClassifier for
/// all four similarity measures — including unknown-part probes, empty
/// feature sets, singleton nodes, and merged duplicate configurations.
TEST(FrozenIndexEquivalenceTest, RandomizedCorporaMatchBruteForceExactly) {
  Rng rng(0x20160318C5FULL);
  FrozenIndex::Scratch scratch;  // Deliberately shared across all corpora.
  const size_t kCorpora = 120;
  for (size_t c = 0; c < kCorpora; ++c) {
    const size_t num_parts = 1 + rng.NextBounded(6);
    const size_t num_codes = 1 + rng.NextBounded(10);
    const int64_t feature_domain = 1 + static_cast<int64_t>(
        rng.NextBounded(40));
    const size_t num_instances = rng.NextBounded(60);  // 0 = empty corpus.
    KnowledgeBase knowledge;
    for (size_t i = 0; i < num_instances; ++i) {
      knowledge.AddInstance(
          "P" + std::to_string(rng.NextBounded(num_parts)),
          "E" + std::to_string(rng.NextBounded(num_codes)),
          RandomFeatureSet(&rng, 12, feature_domain));
    }
    FrozenIndex index = FrozenIndex::Build(knowledge);
    ASSERT_EQ(index.num_nodes(), knowledge.num_nodes());

    for (size_t p = 0; p < 20; ++p) {
      // 1 in 4 probes targets an unknown part (all-nodes fallback); 1 in 5
      // carries an empty feature set.
      std::string part_id =
          rng.NextBernoulli(0.25)
              ? "GHOST" + std::to_string(rng.NextBounded(3))
              : "P" + std::to_string(rng.NextBounded(num_parts));
      std::vector<int64_t> features =
          p % 5 == 0 ? std::vector<int64_t>{}
                     : RandomFeatureSet(&rng, 10, feature_domain);
      const size_t max_nodes = rng.NextBernoulli(0.5) ? 25 : 3;
      ExpectEquivalent(knowledge, index, &scratch, part_id, features,
                       max_nodes);
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "corpus " << c << " probe " << p << " diverged";
      }
    }
  }
}

/// A corpus of singleton nodes (every configuration unique, many parts
/// with exactly one node) — the paper's 718-singleton long tail.
TEST(FrozenIndexEquivalenceTest, SingletonNodesMatchBruteForce) {
  Rng rng(0xBADC0DE5EEDULL);
  KnowledgeBase knowledge;
  for (int i = 0; i < 30; ++i) {
    knowledge.AddInstance("P" + std::to_string(i), "E" + std::to_string(i),
                          {i, i + 100});
  }
  FrozenIndex index = FrozenIndex::Build(knowledge);
  FrozenIndex::Scratch scratch;
  for (int i = 0; i < 30; ++i) {
    ExpectEquivalent(knowledge, index, &scratch, "P" + std::to_string(i),
                     {i, i + 100}, 25);
  }
  ExpectEquivalent(knowledge, index, &scratch, "GHOST", {5, 105}, 25);
}

}  // namespace
}  // namespace qatk::kb
