#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "datagen/oem.h"
#include "datagen/world.h"
#include "eval/evaluator.h"
#include "eval/folds.h"
#include "eval/metrics.h"

namespace qatk::eval {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(AccuracyAccumulatorTest, CountsHitsAtThresholds) {
  AccuracyAccumulator acc({1, 5, 10});
  acc.Observe(1);   // Hits @1, @5, @10.
  acc.Observe(3);   // Hits @5, @10.
  acc.Observe(7);   // Hits @10.
  acc.Observe(0);   // Not found.
  acc.Observe(15);  // Beyond all ks.
  EXPECT_EQ(acc.total(), 5u);
  EXPECT_DOUBLE_EQ(acc.At(0), 1.0 / 5);
  EXPECT_DOUBLE_EQ(acc.At(1), 2.0 / 5);
  EXPECT_DOUBLE_EQ(acc.At(2), 3.0 / 5);
}

TEST(AccuracyAccumulatorTest, EmptyIsZero) {
  AccuracyAccumulator acc({1});
  EXPECT_DOUBLE_EQ(acc.At(0), 0.0);
}

TEST(AccuracyAccumulatorTest, MergeRequiresSameKs) {
  AccuracyAccumulator a({1, 5});
  AccuracyAccumulator b({1, 5});
  AccuracyAccumulator c({1, 10});
  a.Observe(1);
  b.Observe(0);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.total(), 2u);
  EXPECT_DOUBLE_EQ(a.At(0), 0.5);
  EXPECT_TRUE(a.Merge(c).IsInvalid());
}

TEST(AccuracyAccumulatorTest, MeanReciprocalRank) {
  AccuracyAccumulator acc({1});
  acc.Observe(1);   // 1.0
  acc.Observe(2);   // 0.5
  acc.Observe(4);   // 0.25
  acc.Observe(0);   // 0 (not found)
  EXPECT_DOUBLE_EQ(acc.MeanReciprocalRank(), (1.0 + 0.5 + 0.25) / 4.0);
  AccuracyAccumulator empty({1});
  EXPECT_DOUBLE_EQ(empty.MeanReciprocalRank(), 0.0);
}

TEST(FoldedAccuracyTest, MrrAveragedOverFolds) {
  FoldedAccuracy folded({1}, 2);
  folded.Observe(0, 1);  // Fold 0 MRR = 1.0.
  folded.Observe(1, 2);  // Fold 1 MRR = 0.5.
  EXPECT_DOUBLE_EQ(folded.MeanReciprocalRank(), 0.75);
}

TEST(FoldedAccuracyTest, AveragesAcrossFolds) {
  FoldedAccuracy folded({1}, 2);
  // Fold 0: 100% @1 of 2 observations; fold 1: 0% of 2.
  folded.Observe(0, 1);
  folded.Observe(0, 1);
  folded.Observe(1, 0);
  folded.Observe(1, 5);
  EXPECT_DOUBLE_EQ(folded.MeanAt(0), 0.5);
  EXPECT_DOUBLE_EQ(folded.MeanFoldSize(), 2.0);
}

TEST(FoldedAccuracyTest, EmptyFoldsIgnoredInMean) {
  FoldedAccuracy folded({1}, 3);
  folded.Observe(0, 1);  // Fold 0 only.
  EXPECT_DOUBLE_EQ(folded.MeanAt(0), 1.0);
}

// ---------------------------------------------------------------------------
// Stratified folds
// ---------------------------------------------------------------------------

TEST(StratifiedKFoldTest, EveryLabelSpreadAcrossFolds) {
  std::vector<std::string> labels;
  for (int i = 0; i < 50; ++i) labels.push_back("A");
  for (int i = 0; i < 25; ++i) labels.push_back("B");
  for (int i = 0; i < 5; ++i) labels.push_back("C");
  auto folds = StratifiedKFold(labels, 5, 7);
  ASSERT_TRUE(folds.ok());
  std::map<std::string, std::map<size_t, size_t>> per_label;
  for (size_t i = 0; i < labels.size(); ++i) {
    ++per_label[labels[i]][(*folds)[i]];
  }
  // 50 As -> exactly 10 per fold; 25 Bs -> exactly 5; 5 Cs -> 1 each.
  for (const auto& [fold, count] : per_label["A"]) EXPECT_EQ(count, 10u);
  for (const auto& [fold, count] : per_label["B"]) EXPECT_EQ(count, 5u);
  EXPECT_EQ(per_label["C"].size(), 5u);
}

TEST(StratifiedKFoldTest, TwoInstanceLabelLandsInTwoFolds) {
  std::vector<std::string> labels = {"X", "X", "pad1", "pad2", "pad3"};
  auto folds = StratifiedKFold(labels, 5, 11);
  ASSERT_TRUE(folds.ok());
  EXPECT_NE((*folds)[0], (*folds)[1])
      << "both instances in one fold would leave no training instance";
}

TEST(StratifiedKFoldTest, Deterministic) {
  std::vector<std::string> labels(100, "L");
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = "L" + std::to_string(i % 7);
  }
  auto a = StratifiedKFold(labels, 5, 42);
  auto b = StratifiedKFold(labels, 5, 42);
  auto c = StratifiedKFold(labels, 5, 43);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST(StratifiedKFoldTest, RejectsBadInput) {
  EXPECT_TRUE(StratifiedKFold({"a"}, 1, 0).status().IsInvalid());
  EXPECT_TRUE(StratifiedKFold({}, 5, 0).status().IsInvalid());
}

// ---------------------------------------------------------------------------
// End-to-end evaluator on a small world
// ---------------------------------------------------------------------------

class EvaluatorTest : public ::testing::Test {
 protected:
  static datagen::WorldConfig SmallWorld() {
    datagen::WorldConfig config;
    config.num_parts = 6;
    config.num_article_codes = 40;
    config.num_error_codes = 80;
    config.max_codes_largest_part = 25;
    config.mid_part_min_codes = 8;
    config.mid_part_max_codes = 20;
    config.small_parts = 2;
    config.num_components = 80;
    config.num_symptoms = 70;
    config.num_locations = 20;
    config.num_solutions = 20;
    config.components_per_part = 6;
    return config;
  }

  EvaluatorTest() : world_(SmallWorld()) {
    datagen::OemConfig oem;
    oem.num_bundles = 600;
    datagen::OemCorpusGenerator generator(&world_, oem);
    corpus_ = generator.Generate();
  }

  datagen::DomainWorld world_;
  kb::Corpus corpus_;
};

TEST_F(EvaluatorTest, ProducesAllRequestedCurves) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  auto report = evaluator.Run(config);
  ASSERT_TRUE(report.ok()) << report.status();
  // 4 variants + frequency baseline + 2 candidate baselines.
  EXPECT_EQ(report->CurvesFor(kb::kTestSources).size(), 7u);
  EXPECT_GT(report->learnable_bundles, 300u);
  EXPECT_GT(report->distinct_learnable_codes, 20u);
}

TEST_F(EvaluatorTest, AccuraciesMonotonicInK) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  auto report = evaluator.Run(config);
  ASSERT_TRUE(report.ok());
  for (const CurveResult& curve : report->curves) {
    for (size_t i = 1; i < curve.accuracy_at.size(); ++i) {
      EXPECT_GE(curve.accuracy_at[i] + 1e-12, curve.accuracy_at[i - 1])
          << curve.name << " must be monotone in k";
    }
    for (double a : curve.accuracy_at) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST_F(EvaluatorTest, ClassifiersBeatCandidateBaseline) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  auto report = evaluator.Run(config);
  ASSERT_TRUE(report.ok());
  auto bow = report->Find("bag-of-words + jaccard", kb::kTestSources);
  auto cand = report->Find("candidate-set baseline (bag-of-words)",
                           kb::kTestSources);
  ASSERT_TRUE(bow.ok());
  ASSERT_TRUE(cand.ok());
  EXPECT_GT((*bow)->accuracy_at[0], (*cand)->accuracy_at[0] + 0.1);
}

TEST_F(EvaluatorTest, MechanicOnlyWeakerThanAllReports) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  config.probe_masks = {kb::kTestSources, kb::kMechanicOnly};
  config.variants = {{kb::FeatureModel::kBagOfWords,
                      core::SimilarityMeasure::kJaccard}};
  config.include_candidate_baseline = false;
  auto report = evaluator.Run(config);
  ASSERT_TRUE(report.ok());
  auto all = report->Find("bag-of-words + jaccard", kb::kTestSources);
  auto mech = report->Find("bag-of-words + jaccard", kb::kMechanicOnly);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(mech.ok());
  EXPECT_GT((*all)->accuracy_at[0], (*mech)->accuracy_at[0] + 0.15)
      << "experiment 2: mechanic reports alone are a poor entry point";
}

TEST_F(EvaluatorTest, DeterministicAcrossRuns) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  config.variants = {{kb::FeatureModel::kBagOfConcepts,
                      core::SimilarityMeasure::kJaccard}};
  config.include_candidate_baseline = false;
  config.include_frequency_baseline = false;
  auto a = evaluator.Run(config);
  auto b = evaluator.Run(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto ca = a->Find("bag-of-concepts + jaccard", kb::kTestSources);
  auto cb = b->Find("bag-of-concepts + jaccard", kb::kTestSources);
  EXPECT_EQ((*ca)->accuracy_at, (*cb)->accuracy_at);
}

TEST_F(EvaluatorTest, MrrBracketsAccuracy) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  config.variants = {{kb::FeatureModel::kBagOfWords,
                      core::SimilarityMeasure::kJaccard}};
  config.include_candidate_baseline = false;
  config.include_frequency_baseline = false;
  auto report = evaluator.Run(config);
  ASSERT_TRUE(report.ok());
  auto curve = report->Find("bag-of-words + jaccard", kb::kTestSources);
  ASSERT_TRUE(curve.ok());
  // MRR lies between A@1 and A@max-k by construction.
  EXPECT_GE((*curve)->mrr, (*curve)->accuracy_at.front() - 1e-9);
  EXPECT_LE((*curve)->mrr, (*curve)->accuracy_at.back() + 1e-9);
}

TEST_F(EvaluatorTest, FormatTableContainsVariants) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  auto report = evaluator.Run(config);
  ASSERT_TRUE(report.ok());
  std::string table = report->FormatTable(kb::kTestSources);
  EXPECT_NE(table.find("bag-of-words + jaccard"), std::string::npos);
  EXPECT_NE(table.find("code-frequency baseline"), std::string::npos);
  EXPECT_NE(table.find("A@1"), std::string::npos);
}

TEST_F(EvaluatorTest, ParallelRunMatchesSequentialExactly) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  config.probe_masks = {kb::kTestSources, kb::kMechanicOnly};
  auto sequential = evaluator.Run(config);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  config.threads = 4;
  auto parallel = evaluator.Run(config);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_EQ(sequential->curves.size(), parallel->curves.size());
  for (size_t i = 0; i < sequential->curves.size(); ++i) {
    const CurveResult& s = sequential->curves[i];
    const CurveResult& p = parallel->curves[i];
    EXPECT_EQ(s.name, p.name);
    EXPECT_EQ(s.probe_mask, p.probe_mask);
    EXPECT_EQ(s.accuracy_at, p.accuracy_at) << s.name;
    EXPECT_EQ(s.mrr, p.mrr) << s.name;
    EXPECT_EQ(s.evaluated, p.evaluated) << s.name;
  }
  EXPECT_EQ(sequential->learnable_bundles, parallel->learnable_bundles);
  EXPECT_EQ(sequential->mean_test_fold_size, parallel->mean_test_fold_size);
}

TEST(FoldedAccuracyTest, MergeIsExact) {
  FoldedAccuracy a({1, 5}, 2);
  a.Observe(0, 1);
  a.Observe(0, 3);
  FoldedAccuracy b({1, 5}, 2);
  b.Observe(1, 2);
  ASSERT_TRUE(a.Merge(b).ok());
  FoldedAccuracy sequential({1, 5}, 2);
  sequential.Observe(0, 1);
  sequential.Observe(0, 3);
  sequential.Observe(1, 2);
  EXPECT_EQ(a.MeanAt(0), sequential.MeanAt(0));
  EXPECT_EQ(a.MeanAt(1), sequential.MeanAt(1));
  EXPECT_EQ(a.MeanReciprocalRank(), sequential.MeanReciprocalRank());
  FoldedAccuracy wrong_ks({1}, 2);
  EXPECT_TRUE(a.Merge(wrong_ks).IsInvalid());
  FoldedAccuracy wrong_folds({1, 5}, 3);
  EXPECT_TRUE(a.Merge(wrong_folds).IsInvalid());
}

TEST(EvalReportTest, FormatTableSizesColumnFromLongestName) {
  EvalReport report;
  report.ks = {1};
  CurveResult short_curve;
  short_curve.name = "bag-of-words + jaccard";
  short_curve.probe_mask = kb::kTestSources;
  short_curve.accuracy_at = {0.5};
  CurveResult long_curve;
  long_curve.name =
      "candidate-set baseline (bag-of-words-nostop, extended variant)";
  long_curve.probe_mask = kb::kTestSources;
  long_curve.accuracy_at = {0.25};
  report.curves = {short_curve, long_curve};
  std::string table = report.FormatTable(kb::kTestSources);
  // The long name survives untruncated (the old code cut it at 38 chars,
  // losing the closing paren)...
  EXPECT_NE(table.find(long_curve.name), std::string::npos);
  // ...and both data rows still start their value columns at the same
  // offset: every row line is padded to the same name-column width.
  std::istringstream lines(table);
  std::string line;
  std::getline(lines, line);  // Experiment header.
  std::getline(lines, line);  // Column header.
  std::string row_short, row_long;
  std::getline(lines, row_short);
  std::getline(lines, row_long);
  EXPECT_EQ(row_short.find(" 0.500"), row_long.find(" 0.250"));
}

TEST_F(EvaluatorTest, FindUnknownCurveIsKeyError) {
  Evaluator evaluator(&world_.taxonomy(), &corpus_);
  EvalConfig config;
  config.folds = 3;
  auto report = evaluator.Run(config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Find("nope", kb::kTestSources).status().IsKeyError());
}

}  // namespace
}  // namespace qatk::eval
