#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/oem.h"
#include "datagen/world.h"
#include "quest/recommendation_service.h"
#include "server/json.h"
#include "server/protocol.h"

namespace qatk::server {
namespace {

// ---------------------------------------------------------------------------
// JSON codec

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":1,"b":[true,false,null],"c":{"nested":"x"},"d":-2.5})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonTest, MemberOrderIsInsertionOrder) {
  Json object = Json::Object();
  object.Set("zebra", Json(static_cast<int64_t>(1)));
  object.Set("alpha", Json(static_cast<int64_t>(2)));
  object.Set("mid", Json(static_cast<int64_t>(3)));
  EXPECT_EQ(object.Dump(), R"({"zebra":1,"alpha":2,"mid":3})");
  object.Set("alpha", Json(static_cast<int64_t>(9)));  // Overwrite in place.
  EXPECT_EQ(object.Dump(), R"({"zebra":1,"alpha":9,"mid":3})");
}

TEST(JsonTest, DoubleRoundTripIsBitIdentical) {
  const double values[] = {0.1,         1.0 / 3.0, 6.02214076e23,
                           -2.5e-308,   3.14159,   123456789.123456789,
                           0.0,         -0.0,      42.0};
  for (const double value : values) {
    Json document = Json::Object();
    document.Set("v", Json(value));
    auto parsed = Json::Parse(document.Dump());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const double back = parsed->GetNumber("v", 12345.0);
    EXPECT_EQ(std::memcmp(&back, &value, sizeof(double)), 0)
        << "value " << value << " did not survive the round trip";
  }
}

TEST(JsonTest, StringEscapes) {
  Json document = Json::Object();
  document.Set("s", Json(std::string("tab\t quote\" back\\ nl\n ctl\x01")));
  const std::string dumped = document.Dump();
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("s"), "tab\t quote\" back\\ nl\n ctl\x01");
}

TEST(JsonTest, UnicodeEscapesAndSurrogatePairs) {
  auto parsed = Json::Parse(R"({"s":"\u00e9\u0416\ud83d\ude00"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->GetString("s"), "\xC3\xA9\xD0\x96\xF0\x9F\x98\x80");
}

TEST(JsonTest, MalformedDocumentsRejected) {
  const char* bad[] = {
      "",          "{",        "[1,]",     "{\"a\":}",   "tru",
      "01",        "1.",       "\"\\q\"",  "{\"a\" 1}",  "[1] extra",
      "\"\\ud83d\"",  // Lone high surrogate.
      "nan",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Json::Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, DepthCapRejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(Json::Parse(deep).ok());
}

// ---------------------------------------------------------------------------
// Framing

TEST(FramingTest, EncodeDecodeRoundTrip) {
  std::string wire;
  AppendFrame("hello", &wire);
  EXPECT_EQ(wire.size(), kLengthPrefixBytes + 5);
  FrameDecode decode = DecodeFrame(wire);
  ASSERT_EQ(decode.state, FrameDecode::State::kFrame);
  EXPECT_EQ(decode.payload, "hello");
  EXPECT_EQ(decode.consumed, wire.size());
}

TEST(FramingTest, TornFramesNeedMoreAtEveryPrefixLength) {
  std::string wire;
  AppendFrame(R"({"id":1,"method":"Health","params":{}})", &wire);
  // Every strict prefix — inside the length word or inside the payload —
  // must report kNeedMore, never a frame and never an error.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecode decode = DecodeFrame(std::string_view(wire).substr(0, cut));
    EXPECT_EQ(decode.state, FrameDecode::State::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(FramingTest, OversizedPrefixRejectedBeforePayloadArrives) {
  // A hostile 512 MiB length announcement must be rejected from the four
  // prefix bytes alone.
  const std::string wire = {'\x20', '\x00', '\x00', '\x00'};
  FrameDecode decode = DecodeFrame(wire, kDefaultMaxFrameBytes);
  ASSERT_EQ(decode.state, FrameDecode::State::kError);
  EXPECT_NE(decode.error.find("exceeds"), std::string::npos);
}

TEST(FramingTest, ZeroLengthFrameIsError) {
  const std::string wire(kLengthPrefixBytes, '\0');
  EXPECT_EQ(DecodeFrame(wire).state, FrameDecode::State::kError);
}

TEST(FramingTest, PipelinedFramesDecodeInOrder) {
  std::string wire;
  AppendFrame("one", &wire);
  AppendFrame("two", &wire);
  AppendFrame("three", &wire);
  std::vector<std::string> got;
  std::string_view rest = wire;
  for (;;) {
    FrameDecode decode = DecodeFrame(rest);
    if (decode.state != FrameDecode::State::kFrame) break;
    got.emplace_back(decode.payload);
    rest.remove_prefix(decode.consumed);
  }
  EXPECT_EQ(got, (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_TRUE(rest.empty());
}

TEST(FramingTest, InterleavedPartialDelivery) {
  // Two pipelined requests delivered in awkward chunks: a decoder driven
  // chunk-by-chunk must produce exactly the two payloads.
  std::string wire;
  AppendFrame("alpha", &wire);
  AppendFrame("bravo", &wire);
  for (size_t chunk = 1; chunk <= wire.size(); ++chunk) {
    std::string buffer;
    std::vector<std::string> got;
    for (size_t off = 0; off < wire.size(); off += chunk) {
      buffer += wire.substr(off, chunk);
      for (;;) {
        FrameDecode decode = DecodeFrame(buffer);
        if (decode.state != FrameDecode::State::kFrame) {
          ASSERT_EQ(decode.state, FrameDecode::State::kNeedMore);
          break;
        }
        got.emplace_back(decode.payload);
        buffer.erase(0, decode.consumed);
      }
    }
    EXPECT_EQ(got, (std::vector<std::string>{"alpha", "bravo"}))
        << "chunk size " << chunk;
  }
}

// ---------------------------------------------------------------------------
// Request/response payloads

TEST(RequestTest, ParseFullRequest) {
  auto request = ParseRequest(
      R"({"id":7,"method":"Recommend","deadline_ms":250,)"
      R"("params":{"part_id":"P01"}})");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->id, 7);
  EXPECT_EQ(request->method, Method::kRecommend);
  EXPECT_EQ(request->deadline_ms, 250);
  EXPECT_EQ(request->params.GetString("part_id"), "P01");
}

TEST(RequestTest, UnknownMethodIsCarriedNotRejected) {
  auto request = ParseRequest(R"({"id":1,"method":"Frobnicate"})");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, Method::kUnknown);
  EXPECT_EQ(request->method_name, "Frobnicate");
}

TEST(RequestTest, MissingMethodRejected) {
  EXPECT_FALSE(ParseRequest(R"({"id":1})").ok());
  EXPECT_FALSE(ParseRequest(R"({"id":1,"method":5})").ok());
  EXPECT_FALSE(ParseRequest(R"([1,2,3])").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
}

TEST(RequestTest, EncodeParsesBack) {
  Json params = Json::Object();
  params.Set("part_id", Json("P03"));
  const std::string payload = EncodeRequest(42, "RecommendForText", params,
                                            /*deadline_ms=*/100);
  auto request = ParseRequest(payload);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->id, 42);
  EXPECT_EQ(request->method, Method::kRecommendForText);
  EXPECT_EQ(request->deadline_ms, 100);
  EXPECT_EQ(request->params.GetString("part_id"), "P03");
}

TEST(ResponseTest, EncodeParseRoundTrip) {
  Json result = Json::Object();
  result.Set("answer", Json(static_cast<int64_t>(42)));
  auto response = ParseResponse(EncodeResponse(9, Status::OK(), result));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->id, 9);
  EXPECT_TRUE(response->ok());
  EXPECT_EQ(response->result.GetInt("answer", 0), 42);
}

TEST(ResponseTest, ErrorCodesSurviveTheWire) {
  const Status statuses[] = {
      Status::Unavailable("shed"),
      Status::DeadlineExceeded("late"),
      Status::Invalid("bad"),
      Status::KeyError("missing"),
  };
  for (const Status& status : statuses) {
    auto response = ParseResponse(EncodeResponse(1, status, Json()));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->code, status.code());
    EXPECT_EQ(response->message, status.message());
    EXPECT_FALSE(response->ok());
  }
}

TEST(ResponseTest, UnknownCodeNameMapsToInternal) {
  auto response = ParseResponse(
      R"({"id":1,"code":"FutureCode","message":"?","result":null})");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->code, StatusCode::kInternal);
}

TEST(MethodNamesTest, RoundTripAllMethods) {
  const Method methods[] = {
      Method::kRecommend,      Method::kRecommendForText,
      Method::kFullListForPart, Method::kDescribeCode,
      Method::kConfirmAssignment, Method::kDefineErrorCode,
      Method::kHealth,         Method::kStats,
      Method::kMetricsText,    Method::kShardQuery,
      Method::kShardTopK,
  };
  static_assert(kNumMethods == sizeof(methods) / sizeof(methods[0]) + 1,
                "new Method added: extend this test and the golden frames");
  for (const Method method : methods) {
    EXPECT_EQ(MethodFromString(MethodToString(method)), method);
  }
  EXPECT_EQ(MethodFromString("NoSuchMethod"), Method::kUnknown);
}

// ---------------------------------------------------------------------------
// Golden wire frames
//
// The exact framed bytes (4-byte big-endian length prefix + JSON payload)
// of one request per method and of representative responses, recorded
// from the encoders and checked in. These are the protocol's compatibility
// contract: if any of them changes, an old client on the wire breaks, so
// the change must be deliberate — regenerate the constants and say so in
// the commit. The prefixes contain NUL bytes: always slice with
// sizeof - 1, never strlen.

constexpr char kGoldenUnknownRequest[] =
    "\x00" "\x00" "\x00" "*{\"id\":1,\"method\":\"Frobnicate\","
    "\"params\":{}}";
constexpr char kGoldenRecommendRequest[] =
    "\x00" "\x00" "\x00" "b{\"id\":2,\"method\":\"Recommend\",\""
    "params\":{\"part_id\":\"P01\",\"mechanic_report\":\"engine st"
    "alls at idle\"}}";
constexpr char kGoldenRecommendForTextRequest[] =
    "\x00" "\x00" "\x00" "k{\"id\":3,\"method\":\"RecommendForT"
    "ext\",\"deadline_ms\":250,\"params\":{\"part_id\":\"P02\",\"t"
    "ext\":\"fuel pump whines\"}}";
constexpr char kGoldenFullListRequest[] =
    "\x00" "\x00" "\x00" ">{\"id\":4,\"method\":\"FullListForPa"
    "rt\",\"params\":{\"part_id\":\"P01\"}}";
constexpr char kGoldenDescribeRequest[] =
    "\x00" "\x00" "\x00" "9{\"id\":5,\"method\":\"DescribeCode\""
    ",\"params\":{\"code\":\"E042\"}}";
constexpr char kGoldenConfirmRequest[] =
    "\x00" "\x00" "\x00" "~{\"id\":6,\"method\":\"ConfirmAssign"
    "ment\",\"params\":{\"part_id\":\"P01\",\"mechanic_report\":\""
    "engine stalls at idle\",\"error_code\":\"E042\"}}";
constexpr char kGoldenDefineRequest[] =
    "\x00" "\x00" "\x00" "l{\"id\":7,\"method\":\"DefineErrorCo"
    "de\",\"params\":{\"part_id\":\"P03\",\"code\":\"E900\",\"desc"
    "ription\":\"cracked housing\"}}";
constexpr char kGoldenHealthRequest[] =
    "\x00" "\x00" "\x00" "&{\"id\":8,\"method\":\"Health\",\"pa"
    "rams\":{}}";
constexpr char kGoldenStatsRequest[] =
    "\x00" "\x00" "\x00" "%{\"id\":9,\"method\":\"Stats\",\"par"
    "ams\":{}}";
constexpr char kGoldenMetricsTextRequest[] =
    "\x00" "\x00" "\x00" "?{\"id\":10,\"method\":\"MetricsText\""
    ",\"deadline_ms\":1000,\"params\":{}}";
constexpr char kGoldenShardQueryRequest[] =
    "\x00" "\x00" "\x00" "u{\"id\":11,\"method\":\"ShardQuery\","
    "\"params\":{\"part_id\":\"P01\",\"mechanic_report\":\"engine "
    "stalls at idle\",\"fallback\":false}}";
constexpr char kGoldenShardTopKRequest[] =
    "\x00" "\x00" "\x00" "c{\"id\":12,\"method\":\"ShardTopK\",\""
    "params\":{\"part_id\":\"P02\",\"text\":\"fuel pump whines\",\""
    "fallback\":true}}";
constexpr char kGoldenOkResponse[] =
    "\x00" "\x00" "\x00" "c{\"id\":2,\"code\":\"OK\",\"message\""
    ":\"\",\"result\":{\"top\":[{\"code\":\"E042\",\"score\":0.25}"
    "],\"truncated\":false}}";
constexpr char kGoldenHealthResponse[] =
    "\x00" "\x00" "\x00" ":{\"id\":8,\"code\":\"OK\",\"message\""
    ":\"\",\"result\":{\"status\":\"ok\"}}";
constexpr char kGoldenShedResponse[] =
    "\x00" "\x00" "\x00" "a{\"id\":3,\"code\":\"Unavailable\",\""
    "message\":\"server over capacity (max_in_flight=1024)\",\"res"
    "ult\":null}";
constexpr char kGoldenDeadlineResponse[] =
    "\x00" "\x00" "\x00" "^{\"id\":4,\"code\":\"DeadlineExceede"
    "d\",\"message\":\"deadline expired before execution\",\"resul"
    "t\":null}";
constexpr char kGoldenInvalidResponse[] =
    "\x00" "\x00" "\x00" "O{\"id\":1,\"code\":\"Invalid\",\"mes"
    "sage\":\"unknown method 'Frobnicate'\",\"result\":null}";
constexpr char kGoldenShardPartialResponse[] =
    "\x00" "\x00" "\x00" "~{\"id\":11,\"code\":\"OK\",\"message"
    "\":\"\",\"result\":{\"known\":true,\"fallback\":false,\"items"
    "\":[{\"code\":\"E042\",\"score\":0.25,\"ordinal\":7}]}}";

template <size_t N>
std::string_view GoldenBytes(const char (&literal)[N]) {
  return std::string_view(literal, N - 1);
}

std::string Framed(const std::string& payload) {
  std::string frame;
  AppendFrame(payload, &frame);
  return frame;
}

TEST(GoldenFrameTest, RequestEncodersReproduceRecordedFramesBitExact) {
  Json recommend = Json::Object();
  recommend.Set("part_id", Json("P01"));
  recommend.Set("mechanic_report", Json("engine stalls at idle"));
  Json for_text = Json::Object();
  for_text.Set("part_id", Json("P02"));
  for_text.Set("text", Json("fuel pump whines"));
  Json full_list = Json::Object();
  full_list.Set("part_id", Json("P01"));
  Json describe = Json::Object();
  describe.Set("code", Json("E042"));
  Json confirm = Json::Object();
  confirm.Set("part_id", Json("P01"));
  confirm.Set("mechanic_report", Json("engine stalls at idle"));
  confirm.Set("error_code", Json("E042"));
  Json define = Json::Object();
  define.Set("part_id", Json("P03"));
  define.Set("code", Json("E900"));
  define.Set("description", Json("cracked housing"));
  // Shard probes: the public params plus the routing round's "fallback"
  // flag, exactly as the coordinator builds them.
  Json shard_query = Json::Object();
  shard_query.Set("part_id", Json("P01"));
  shard_query.Set("mechanic_report", Json("engine stalls at idle"));
  shard_query.Set("fallback", Json(false));
  Json shard_topk = Json::Object();
  shard_topk.Set("part_id", Json("P02"));
  shard_topk.Set("text", Json("fuel pump whines"));
  shard_topk.Set("fallback", Json(true));

  EXPECT_EQ(Framed(EncodeRequest(1, "Frobnicate", Json::Object())),
            GoldenBytes(kGoldenUnknownRequest));
  EXPECT_EQ(Framed(EncodeRequest(2, "Recommend", recommend)),
            GoldenBytes(kGoldenRecommendRequest));
  EXPECT_EQ(Framed(EncodeRequest(3, "RecommendForText", for_text, 250)),
            GoldenBytes(kGoldenRecommendForTextRequest));
  EXPECT_EQ(Framed(EncodeRequest(4, "FullListForPart", full_list)),
            GoldenBytes(kGoldenFullListRequest));
  EXPECT_EQ(Framed(EncodeRequest(5, "DescribeCode", describe)),
            GoldenBytes(kGoldenDescribeRequest));
  EXPECT_EQ(Framed(EncodeRequest(6, "ConfirmAssignment", confirm)),
            GoldenBytes(kGoldenConfirmRequest));
  EXPECT_EQ(Framed(EncodeRequest(7, "DefineErrorCode", define)),
            GoldenBytes(kGoldenDefineRequest));
  EXPECT_EQ(Framed(EncodeRequest(8, "Health", Json::Object())),
            GoldenBytes(kGoldenHealthRequest));
  EXPECT_EQ(Framed(EncodeRequest(9, "Stats", Json::Object())),
            GoldenBytes(kGoldenStatsRequest));
  EXPECT_EQ(Framed(EncodeRequest(10, "MetricsText", Json::Object(), 1000)),
            GoldenBytes(kGoldenMetricsTextRequest));
  EXPECT_EQ(Framed(EncodeRequest(11, "ShardQuery", shard_query)),
            GoldenBytes(kGoldenShardQueryRequest));
  EXPECT_EQ(Framed(EncodeRequest(12, "ShardTopK", shard_topk)),
            GoldenBytes(kGoldenShardTopKRequest));
}

TEST(GoldenFrameTest, RecordedRequestFramesDecodeToTheRightMethods) {
  const struct {
    std::string_view frame;
    int64_t id;
    Method method;
    int64_t deadline_ms;
  } cases[] = {
      {GoldenBytes(kGoldenUnknownRequest), 1, Method::kUnknown, -1},
      {GoldenBytes(kGoldenRecommendRequest), 2, Method::kRecommend, -1},
      {GoldenBytes(kGoldenRecommendForTextRequest), 3,
       Method::kRecommendForText, 250},
      {GoldenBytes(kGoldenFullListRequest), 4, Method::kFullListForPart, -1},
      {GoldenBytes(kGoldenDescribeRequest), 5, Method::kDescribeCode, -1},
      {GoldenBytes(kGoldenConfirmRequest), 6, Method::kConfirmAssignment,
       -1},
      {GoldenBytes(kGoldenDefineRequest), 7, Method::kDefineErrorCode, -1},
      {GoldenBytes(kGoldenHealthRequest), 8, Method::kHealth, -1},
      {GoldenBytes(kGoldenStatsRequest), 9, Method::kStats, -1},
      {GoldenBytes(kGoldenMetricsTextRequest), 10, Method::kMetricsText,
       1000},
      {GoldenBytes(kGoldenShardQueryRequest), 11, Method::kShardQuery, -1},
      {GoldenBytes(kGoldenShardTopKRequest), 12, Method::kShardTopK, -1},
  };
  // One golden frame per Method value, by construction.
  ASSERT_EQ(sizeof(cases) / sizeof(cases[0]), kNumMethods);
  for (const auto& c : cases) {
    const FrameDecode decode = DecodeFrame(c.frame);
    ASSERT_EQ(decode.state, FrameDecode::State::kFrame);
    EXPECT_EQ(decode.consumed, c.frame.size());
    auto request = ParseRequest(decode.payload);
    ASSERT_TRUE(request.ok()) << request.status();
    EXPECT_EQ(request->id, c.id);
    EXPECT_EQ(request->method, c.method);
    EXPECT_EQ(request->deadline_ms, c.deadline_ms);
  }
}

TEST(GoldenFrameTest, ResponseEncodersReproduceRecordedFramesBitExact) {
  Json ok_result = Json::Object();
  ok_result.Set("status", Json("ok"));
  Json scored = Json::Object();
  Json top = Json::Array();
  Json entry = Json::Object();
  entry.Set("code", Json("E042"));
  entry.Set("score", Json(0.25));
  top.Append(entry);
  scored.Set("top", top);
  scored.Set("truncated", Json(false));

  EXPECT_EQ(Framed(EncodeResponse(2, Status::OK(), scored)),
            GoldenBytes(kGoldenOkResponse));
  EXPECT_EQ(Framed(EncodeResponse(8, Status::OK(), ok_result)),
            GoldenBytes(kGoldenHealthResponse));
  EXPECT_EQ(Framed(EncodeResponse(
                3,
                Status::Unavailable(
                    "server over capacity (max_in_flight=1024)"),
                Json())),
            GoldenBytes(kGoldenShedResponse));
  EXPECT_EQ(Framed(EncodeResponse(
                4,
                Status::DeadlineExceeded(
                    "deadline expired before execution"),
                Json())),
            GoldenBytes(kGoldenDeadlineResponse));
  EXPECT_EQ(Framed(EncodeResponse(
                1, Status::Invalid("unknown method 'Frobnicate'"), Json())),
            GoldenBytes(kGoldenInvalidResponse));

  // The shard partial travels through ShardPartialToJson: member order
  // and the %.17g score formatting are part of the wire contract (the
  // coordinator merges the parsed-back doubles bit-for-bit).
  quest::RecommendationService::ShardPartial partial;
  partial.known_part = true;
  partial.fallback = false;
  partial.items.push_back({"E042", 0.25, 7});
  EXPECT_EQ(Framed(EncodeResponse(11, Status::OK(),
                                  ShardPartialToJson(partial))),
            GoldenBytes(kGoldenShardPartialResponse));
}

TEST(GoldenFrameTest, ShardPartialRoundTripsThroughTheWire) {
  quest::RecommendationService::ShardPartial partial;
  partial.known_part = true;
  partial.fallback = true;
  partial.items.push_back({"E042", 1.0 / 3.0, 12345678901ull});
  partial.items.push_back({"E007", 0.0, 0});
  const std::string payload =
      EncodeResponse(1, Status::OK(), ShardPartialToJson(partial));
  auto response = ParseResponse(payload);
  ASSERT_TRUE(response.ok()) << response.status();
  auto back = ShardPartialFromJson(response->result);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->known_part, partial.known_part);
  EXPECT_EQ(back->fallback, partial.fallback);
  ASSERT_EQ(back->items.size(), partial.items.size());
  for (size_t i = 0; i < partial.items.size(); ++i) {
    EXPECT_EQ(back->items[i].error_code, partial.items[i].error_code);
    // Bit-identical doubles: the merge compares these.
    EXPECT_EQ(std::memcmp(&back->items[i].score, &partial.items[i].score,
                          sizeof(double)),
              0);
    EXPECT_EQ(back->items[i].ordinal, partial.items[i].ordinal);
  }
  EXPECT_FALSE(
      ShardPartialFromJson(Json("not an object")).ok());
}

TEST(GoldenFrameTest, RecordedResponseFramesParseBack) {
  const struct {
    std::string_view frame;
    int64_t id;
    StatusCode code;
  } cases[] = {
      {GoldenBytes(kGoldenOkResponse), 2, StatusCode::kOk},
      {GoldenBytes(kGoldenHealthResponse), 8, StatusCode::kOk},
      {GoldenBytes(kGoldenShedResponse), 3, StatusCode::kUnavailable},
      {GoldenBytes(kGoldenDeadlineResponse), 4,
       StatusCode::kDeadlineExceeded},
      {GoldenBytes(kGoldenInvalidResponse), 1, StatusCode::kInvalid},
      {GoldenBytes(kGoldenShardPartialResponse), 11, StatusCode::kOk},
  };
  for (const auto& c : cases) {
    const FrameDecode decode = DecodeFrame(c.frame);
    ASSERT_EQ(decode.state, FrameDecode::State::kFrame);
    auto response = ParseResponse(decode.payload);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->id, c.id);
    EXPECT_EQ(response->code, c.code);
  }
}

// ---------------------------------------------------------------------------
// Prometheus text rendering

TEST(PrometheusTextTest, RendersAllKindsWithLabelSplicing) {
#ifdef QATK_NO_METRICS
  GTEST_SKIP() << "metrics compiled out (QATK_NO_METRICS)";
#else
  obs::Registry registry;
  registry.GetCounter("test_requests_total{method=\"Recommend\"}")->Add(7);
  registry.GetCounter("test_requests_total{method=\"Stats\"}")->Add(2);
  registry.GetGauge("test_nodes")->Set(-3);
  obs::Histogram* histogram = registry.GetHistogram(
      "test_latency_us{method=\"Recommend\"}");
  histogram->Record(0);
  histogram->Record(5);
  histogram->Record(obs::kHistogramOverflow + 1);
  const std::string text = RenderPrometheusText(registry.Snapshot());

  // One TYPE line per base name, not per labeled series.
  EXPECT_NE(text.find("# TYPE test_requests_total counter\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_requests_total counter",
                      text.find("# TYPE test_requests_total counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total{method=\"Recommend\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total{method=\"Stats\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_nodes gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_nodes -3\n"), std::string::npos);

  // Histogram: `le` is spliced into the existing label set, buckets are
  // cumulative, the last bucket is +Inf, and _count matches the total.
  EXPECT_NE(text.find("# TYPE test_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("test_latency_us_bucket{method=\"Recommend\",le=\"0\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("test_latency_us_bucket{method=\"Recommend\",le=\"5\"} 2\n"),
      std::string::npos);
  EXPECT_NE(text.find(
                "test_latency_us_bucket{method=\"Recommend\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_us_count{method=\"Recommend\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_us_sum{method=\"Recommend\"} "),
            std::string::npos);
#endif
}

// ---------------------------------------------------------------------------
// Dispatch against a real (tiny) trained service

class DispatchTest : public ::testing::Test {
 protected:
  static datagen::WorldConfig TinyWorld() {
    datagen::WorldConfig config;
    config.num_parts = 6;
    config.num_article_codes = 40;
    config.num_error_codes = 80;
    config.max_codes_largest_part = 25;
    config.mid_part_min_codes = 8;
    config.mid_part_max_codes = 20;
    config.small_parts = 2;
    config.num_components = 80;
    config.num_symptoms = 70;
    config.num_locations = 20;
    config.num_solutions = 20;
    config.components_per_part = 6;
    return config;
  }

  DispatchTest() : world_(TinyWorld()) {
    datagen::OemConfig oem;
    oem.num_bundles = 600;
    datagen::OemCorpusGenerator generator(&world_, oem);
    corpus_ = generator.Generate();
    service_ = std::make_unique<quest::RecommendationService>(
        &world_.taxonomy(), quest::RecommendationService::Options{});
    QATK_CHECK(service_->Train(corpus_).ok());
  }

  Response Call(std::string_view payload) {
    auto request = ParseRequest(payload);
    QATK_CHECK(request.ok());
    return Dispatch(service_.get(), *request);
  }

  datagen::DomainWorld world_;
  kb::Corpus corpus_;
  std::unique_ptr<quest::RecommendationService> service_;
};

TEST_F(DispatchTest, RecommendMatchesDirectCall) {
  const kb::DataBundle& bundle = corpus_.bundles[0];
  Json params = Json::Object();
  params.Set("part_id", Json(bundle.part_id));
  params.Set("mechanic_report", Json(bundle.mechanic_report));
  params.Set("initial_oem_report", Json(bundle.initial_oem_report));
  params.Set("supplier_report", Json(bundle.supplier_report));
  Request request;
  request.id = 1;
  request.method = Method::kRecommend;
  request.params = params;
  const Response response = Dispatch(service_.get(), request);
  ASSERT_TRUE(response.ok()) << response.message;

  kb::DataBundle probe;
  probe.part_id = bundle.part_id;
  probe.mechanic_report = bundle.mechanic_report;
  probe.initial_oem_report = bundle.initial_oem_report;
  probe.supplier_report = bundle.supplier_report;
  auto direct = service_->Recommend(probe);
  ASSERT_TRUE(direct.ok());
  // The wire result must be byte-identical to re-encoding the direct one.
  EXPECT_EQ(response.result.Dump(), RecommendationToJson(*direct).Dump());
}

TEST_F(DispatchTest, FullListAndDescribe) {
  Response list = Call(
      R"({"id":2,"method":"FullListForPart","params":{"part_id":"P01"}})");
  ASSERT_TRUE(list.ok()) << list.message;
  const Json* codes = list.result.Find("codes");
  ASSERT_NE(codes, nullptr);
  ASSERT_TRUE(codes->is_array());
  ASSERT_GT(codes->items().size(), 0u);

  const std::string code =
      codes->items()[0].GetString("code", "");
  Response described = Call(
      R"({"id":3,"method":"DescribeCode","params":{"code":")" + code +
      R"("}})");
  EXPECT_TRUE(described.ok()) << described.message;
}

TEST_F(DispatchTest, ErrorsMapToStatusCodes) {
  EXPECT_EQ(Call(R"({"id":1,"method":"Nope"})").code,
            StatusCode::kInvalid);
  EXPECT_EQ(
      Call(R"({"id":1,"method":"DescribeCode","params":{"code":"E_X"}})")
          .code,
      StatusCode::kKeyError);
  // Health/Stats are server-level; Dispatch refuses them.
  EXPECT_EQ(Call(R"({"id":1,"method":"Health"})").code,
            StatusCode::kInvalid);
}

TEST_F(DispatchTest, IdIsEchoed) {
  EXPECT_EQ(Call(R"({"id":31337,"method":"Nope"})").id, 31337);
}

}  // namespace
}  // namespace qatk::server
