// Adversarial equivalence battery for the pruned top-k scoring path
// (DESIGN.md §15): score-upper-bound pruning over block-compressed postings
// must be bit-identical to both the unpruned indexed path and brute force —
// same codes, same (score desc, node asc) order, same score doubles — over
// corpora built to stress every way pruning can go wrong: tie-heavy score
// distributions, scores landing exactly on the pruning threshold,
// singleton/empty postings and feature sets, and unknown-part fallbacks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/classifier.h"
#include "core/similarity.h"
#include "kb/frozen_index.h"
#include "kb/knowledge_base.h"
#include "obs/metrics.h"

namespace qatk {
namespace {

constexpr core::SimilarityMeasure kAllMeasures[] = {
    core::SimilarityMeasure::kJaccard,
    core::SimilarityMeasure::kOverlap,
    core::SimilarityMeasure::kDice,
    core::SimilarityMeasure::kCosine,
};

std::vector<int64_t> RandomFeatureSet(Rng* rng, size_t max_size,
                                      int64_t domain) {
  std::set<int64_t> unique;
  const size_t size = rng->NextBounded(max_size + 1);
  for (size_t i = 0; i < size; ++i) {
    unique.insert(static_cast<int64_t>(rng->NextBounded(domain)));
  }
  return {unique.begin(), unique.end()};
}

/// Bit-exact comparison: equal codes and equal score *bits* at every rank.
void ExpectSameRanking(const std::vector<core::ScoredCode>& expected,
                       const std::vector<core::ScoredCode>& actual,
                       const char* what, core::SimilarityMeasure measure) {
  ASSERT_EQ(expected.size(), actual.size())
      << what << " rank-length mismatch, measure="
      << core::SimilarityMeasureToString(measure);
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].error_code, actual[i].error_code)
        << what << " code mismatch at rank " << i
        << ", measure=" << core::SimilarityMeasureToString(measure);
    ASSERT_EQ(0, std::memcmp(&expected[i].score, &actual[i].score,
                             sizeof(double)))
        << what << " score bits mismatch at rank " << i
        << ", measure=" << core::SimilarityMeasureToString(measure)
        << ", expected=" << expected[i].score
        << ", actual=" << actual[i].score;
  }
}

/// Pruned vs unpruned vs brute force for one probe across all measures.
void ExpectTriEquivalent(const kb::KnowledgeBase& knowledge,
                         const kb::FrozenIndex& index,
                         kb::FrozenIndex::Scratch* scratch,
                         const std::string& part_id,
                         const std::vector<int64_t>& features,
                         size_t max_nodes) {
  for (core::SimilarityMeasure measure : kAllMeasures) {
    core::RankedKnnClassifier pruned({measure, max_nodes, true});
    core::RankedKnnClassifier unpruned({measure, max_nodes, false});
    std::vector<core::ScoredCode> brute =
        pruned.Classify(knowledge, part_id, features);
    std::vector<core::ScoredCode> with_pruning =
        pruned.Classify(index, part_id, features, scratch);
    std::vector<core::ScoredCode> without_pruning =
        unpruned.Classify(index, part_id, features, scratch);
    ExpectSameRanking(brute, with_pruning, "pruned-vs-brute", measure);
    ExpectSameRanking(brute, without_pruning, "unpruned-vs-brute", measure);
  }
}

/// ≥200 seeded corpora tuned so posting runs regularly span multiple
/// compressed blocks (small feature domains, hundreds of instances in few
/// parts): the regime where the threshold machinery actually activates and
/// blocks actually get skipped — then proven bit-identical anyway.
TEST(PrunedEquivalenceTest, AdversarialRandomizedCorpora) {
  Rng rng(0x9121BADF00DULL);
  kb::FrozenIndex::Scratch scratch;  // Deliberately shared across corpora.
  const size_t kCorpora = 220;
  for (size_t c = 0; c < kCorpora; ++c) {
    const size_t num_parts = 1 + rng.NextBounded(3);
    const size_t num_codes = 1 + rng.NextBounded(8);
    // Tiny domains make near-every pair of nodes collide on features:
    // tie-heavy scores and long, dense posting runs.
    const int64_t feature_domain =
        2 + static_cast<int64_t>(rng.NextBounded(11));
    const size_t num_instances = 40 + rng.NextBounded(201);
    kb::KnowledgeBase knowledge;
    for (size_t i = 0; i < num_instances; ++i) {
      knowledge.AddInstance(
          "P" + std::to_string(rng.NextBounded(num_parts)),
          "E" + std::to_string(rng.NextBounded(num_codes)),
          RandomFeatureSet(&rng, 8, feature_domain));
    }
    kb::FrozenIndex index = kb::FrozenIndex::Build(knowledge);

    for (size_t p = 0; p < 8; ++p) {
      const std::string part_id =
          rng.NextBernoulli(0.25)
              ? "GHOST" + std::to_string(rng.NextBounded(3))
              : "P" + std::to_string(rng.NextBounded(num_parts));
      const std::vector<int64_t> features =
          p % 5 == 0 ? std::vector<int64_t>{}
                     : RandomFeatureSet(&rng, 6, feature_domain);
      // k = 1 maximizes threshold pressure; k past the corpus size forces
      // the no-skip regime; 25 is the paper's deployment value.
      const size_t k_choices[] = {1, 2, 3, 25, num_instances + 10};
      const size_t max_nodes = k_choices[rng.NextBounded(5)];
      ExpectTriEquivalent(knowledge, index, &scratch, part_id, features,
                          max_nodes);
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "corpus " << c << " probe " << p << " diverged";
      }
    }
  }
}

/// Scores landing exactly on the pruning threshold: more equal-score nodes
/// than the heap holds, so the k-th best score equals every block bound.
/// A skip on `bound == theta` (instead of strictly less) would drop nodes
/// that win the id tie-break.
TEST(PrunedEquivalenceTest, ScoresExactlyOnThresholdKeepIdTieBreak) {
  kb::KnowledgeBase knowledge;
  // 150 nodes with identical feature sets (distinct codes, so nothing
  // merges): every score identical, runs span 3 blocks.
  for (int i = 0; i < 150; ++i) {
    knowledge.AddInstance("P0", "E" + std::to_string(i), {1, 2, 3});
  }
  kb::FrozenIndex index = kb::FrozenIndex::Build(knowledge);
  kb::FrozenIndex::Scratch scratch;
  ExpectTriEquivalent(knowledge, index, &scratch, "P0", {1, 2, 3}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "P0", {1, 3}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "P0", {2}, 1);
  ExpectTriEquivalent(knowledge, index, &scratch, "GHOST", {1}, 25);
}

/// Singleton and empty postings: parts with one node, nodes with no
/// features, features with one posting, probes matching nothing.
TEST(PrunedEquivalenceTest, SingletonAndEmptyPostings) {
  kb::KnowledgeBase knowledge;
  knowledge.AddInstance("P0", "E0", {});     // Featureless node.
  knowledge.AddInstance("P1", "E1", {7});    // Singleton posting.
  for (int i = 0; i < 130; ++i) {            // One long-run part besides.
    knowledge.AddInstance("P2", "E" + std::to_string(i % 4), {7, 9, i % 3});
  }
  kb::FrozenIndex index = kb::FrozenIndex::Build(knowledge);
  kb::FrozenIndex::Scratch scratch;
  ExpectTriEquivalent(knowledge, index, &scratch, "P0", {7}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "P1", {7}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "P2", {7, 9}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "P2", {}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "P2", {1000}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "GHOST", {7}, 25);
  ExpectTriEquivalent(knowledge, index, &scratch, "GHOST", {}, 3);
}

/// The pruning must actually prune: a corpus with 30 strong contenders and
/// 500 hopeless light nodes behind them in frequency-rank order. Verifies
/// (a) blocks really get skipped (counter moves), (b) fewer postings are
/// scanned than the unpruned path reads, (c) results stay bit-identical.
TEST(PrunedEquivalenceTest, HopelessBlocksAreSkippedAndResultsExact) {
  kb::KnowledgeBase knowledge;
  const std::vector<int64_t> probe = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (int i = 0; i < 30; ++i) {  // Full-overlap contenders, |B| = 10.
    knowledge.AddInstance("P0", "HEAVY" + std::to_string(i), probe);
  }
  for (int i = 0; i < 500; ++i) {  // |B| = 2, share one probe feature.
    knowledge.AddInstance("P0", "LIGHT" + std::to_string(i),
                          {0, 100 + i});
  }
  kb::FrozenIndex index = kb::FrozenIndex::Build(knowledge);
  kb::FrozenIndex::Scratch scratch;

  obs::Counter* scanned =
      obs::Registry::Global().GetCounter("qatk_kb_postings_scanned_total");
  obs::Counter* blocks_skipped =
      obs::Registry::Global().GetCounter("qatk_prune_blocks_skipped_total");

  core::RankedKnnClassifier pruned(
      {core::SimilarityMeasure::kJaccard, 25, true});
  core::RankedKnnClassifier unpruned(
      {core::SimilarityMeasure::kJaccard, 25, false});

  const uint64_t scanned_before_unpruned = scanned->Value();
  std::vector<core::ScoredCode> reference =
      unpruned.Classify(index, "P0", probe, &scratch);
  const uint64_t unpruned_read = scanned->Value() - scanned_before_unpruned;

  const uint64_t scanned_before_pruned = scanned->Value();
  const uint64_t blocks_before = blocks_skipped->Value();
  std::vector<core::ScoredCode> result =
      pruned.Classify(index, "P0", probe, &scratch);
  const uint64_t pruned_read = scanned->Value() - scanned_before_pruned;
  const uint64_t blocks_delta = blocks_skipped->Value() - blocks_before;

  ExpectSameRanking(reference, result, "pruned-vs-unpruned",
                    core::SimilarityMeasure::kJaccard);
  ExpectSameRanking(pruned.Classify(knowledge, "P0", probe), result,
                    "brute-vs-pruned", core::SimilarityMeasure::kJaccard);
  // Feature 0's run is 530 postings (9 blocks); the light-node tail is
  // hopeless once the 25-deep threshold holds the heavy nodes' scores.
#ifndef QATK_NO_METRICS
  EXPECT_GE(blocks_delta, 5u) << "pruning never skipped a block";
  EXPECT_LT(pruned_read, unpruned_read)
      << "pruning scanned as much as the full sweep";
#else
  (void)blocks_delta;
  (void)pruned_read;
  (void)unpruned_read;
#endif
  ExpectTriEquivalent(knowledge, index, &scratch, "P0", probe, 25);
}

// ---------------------------------------------------------------------------
// Block upper-bound admissibility (the property the skip rule leans on).
// ---------------------------------------------------------------------------

/// For every measure: over randomized count vectors, no achievable score
/// (any |B| in the block's [nb_lo, nb_hi] range, any shared count up to
/// min(cap, |A|, |B|)) exceeds the freeze-time bound.
TEST(SimilarityUpperBoundTest, AdmissibleOverRandomizedCountVectors) {
  Rng rng(0xB0B5EEDULL);
  for (int trial = 0; trial < 20000; ++trial) {
    const size_t na = rng.NextBounded(41);
    const size_t lo_raw = rng.NextBounded(41);
    const size_t hi = lo_raw + rng.NextBounded(41 - lo_raw);
    const size_t lo = lo_raw;
    const size_t cap = rng.NextBounded(41);
    const size_t nb = lo + rng.NextBounded(hi - lo + 1);
    const size_t shared =
        rng.NextBounded(std::min({cap, na, nb}) + 1);
    for (core::SimilarityMeasure measure : kAllMeasures) {
      const double score =
          core::SimilarityFromCounts(measure, shared, na, nb);
      const double bound =
          core::SimilarityUpperBound(measure, cap, na, lo, hi);
      ASSERT_LE(score, bound)
          << "inadmissible bound, measure="
          << core::SimilarityMeasureToString(measure) << " na=" << na
          << " nb=" << nb << " in [" << lo << "," << hi << "]"
          << " shared=" << shared << " cap=" << cap;
    }
  }
}

/// The bound is tight at its maximizing point: some achievable score equals
/// it bit-for-bit (it is computed by the same kernel), so it cannot be
/// loosened away from the skip threshold by rounding.
TEST(SimilarityUpperBoundTest, BoundIsAchievedAtTheMaximizingPoint) {
  Rng rng(0x7157EEDULL);
  for (int trial = 0; trial < 5000; ++trial) {
    const size_t na = 1 + rng.NextBounded(30);
    const size_t lo = rng.NextBounded(31);
    const size_t hi = lo + rng.NextBounded(31 - std::min<size_t>(lo, 30));
    const size_t cap = 1 + rng.NextBounded(30);
    for (core::SimilarityMeasure measure : kAllMeasures) {
      const double bound =
          core::SimilarityUpperBound(measure, cap, na, lo, hi);
      const size_t c0 = std::min(cap, na);
      const size_t nb = std::min(std::max(c0, lo), hi);
      const double achieved = core::SimilarityFromCounts(
          measure, std::min(c0, nb), na, nb);
      ASSERT_EQ(0, std::memcmp(&bound, &achieved, sizeof(double)));
    }
  }
}

/// Mutation check: deliberately-too-tight bounds MUST be caught by the same
/// sweep the admissibility test runs. Two classic wrong derivations — (a)
/// evaluating the bound only at nb_hi (ignoring that the score peaks at
/// |B| = min(cap, |A|), not at the range edge) and (b) shaving the shared
/// cap by one — each violate admissibility somewhere in the sweep. If this
/// test ever fails, the admissibility sweep has lost its teeth.
TEST(SimilarityUpperBoundTest, TooTightBoundsAreCaughtByTheSweep) {
  Rng rng(0xDEADB0B5ULL);
  size_t violations_nb_hi[4] = {0, 0, 0, 0};
  size_t violations_cap_minus_1[4] = {0, 0, 0, 0};
  for (int trial = 0; trial < 20000; ++trial) {
    const size_t na = 1 + rng.NextBounded(40);
    const size_t lo = rng.NextBounded(41);
    const size_t hi = lo + rng.NextBounded(41 - std::min<size_t>(lo, 40));
    const size_t cap = 1 + rng.NextBounded(40);
    const size_t nb = lo + rng.NextBounded(hi - lo + 1);
    const size_t shared = rng.NextBounded(std::min({cap, na, nb}) + 1);
    for (size_t m = 0; m < 4; ++m) {
      const core::SimilarityMeasure measure = kAllMeasures[m];
      const double score =
          core::SimilarityFromCounts(measure, shared, na, nb);
      // Mutant (a): bound evaluated at the nb_hi edge only.
      const size_t c0 = std::min(cap, na);
      const double at_hi_only = core::SimilarityFromCounts(
          measure, std::min(c0, hi), na, hi);
      if (score > at_hi_only) ++violations_nb_hi[m];
      // Mutant (b): cap understated by one.
      const double cap_shaved =
          core::SimilarityUpperBound(measure, cap - 1, na, lo, hi);
      if (score > cap_shaved) ++violations_cap_minus_1[m];
    }
  }
  for (size_t m = 0; m < 4; ++m) {
    EXPECT_GT(violations_nb_hi[m], 0u)
        << "nb_hi-only mutant went undetected for "
        << core::SimilarityMeasureToString(kAllMeasures[m]);
    EXPECT_GT(violations_cap_minus_1[m], 0u)
        << "cap-1 mutant went undetected for "
        << core::SimilarityMeasureToString(kAllMeasures[m]);
  }
}

}  // namespace
}  // namespace qatk
