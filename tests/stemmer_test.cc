#include <gtest/gtest.h>

#include "cas/annotators.h"
#include "cas/cas.h"
#include "kb/features.h"
#include "text/stemmer.h"

namespace qatk::text {
namespace {

TEST(StemmerTest, GermanInflection) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("leitungen", Language::kGerman), "leit");
  EXPECT_EQ(stemmer.Stem("bremsen", Language::kGerman), "brems");
  EXPECT_EQ(stemmer.Stem("dichtung", Language::kGerman), "dicht");
  EXPECT_EQ(stemmer.Stem("schlauch", Language::kGerman), "schlauch");
}

TEST(StemmerTest, EnglishInflection) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("leaking", Language::kEnglish), "leak");
  EXPECT_EQ(stemmer.Stem("brakes", Language::kEnglish), "brak");
  EXPECT_EQ(stemmer.Stem("brake", Language::kEnglish), "brak")
      << "singular and plural must collapse to the same stem";
  EXPECT_EQ(stemmer.Stem("stopped", Language::kEnglish), "stop");
  EXPECT_EQ(stemmer.Stem("crack", Language::kEnglish), "crack");
}

TEST(StemmerTest, ShortWordsUntouched) {
  Stemmer stemmer;
  // Stems never drop below four characters.
  EXPECT_EQ(stemmer.Stem("dies", Language::kGerman), "dies");
  EXPECT_EQ(stemmer.Stem("ring", Language::kEnglish), "ring");
  EXPECT_EQ(stemmer.Stem("ab", Language::kGerman), "ab");
}

TEST(StemmerTest, UnknownLanguagePassesThrough) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("bremsen", Language::kUnknown), "bremsen");
}

TEST(StemmerTest, StemIsIdempotentForTypicalWords) {
  Stemmer stemmer;
  for (const char* word : {"leitungen", "leaking", "dichtungen",
                           "housings", "kontakte"}) {
    for (Language lang : {Language::kGerman, Language::kEnglish}) {
      std::string once = stemmer.Stem(word, lang);
      std::string twice = stemmer.Stem(once, lang);
      // One more application may strip a second genuine suffix, but must
      // never go below the minimum stem length.
      EXPECT_GE(twice.size(), 4u) << word;
    }
  }
}

TEST(StemmerAnnotatorTest, WritesStemFeaturePerLanguage) {
  cas::Cas c("die Leitungen sind undicht");
  cas::Pipeline pipeline;
  pipeline.Add(std::make_unique<cas::TokenizerAnnotator>())
      .Add(std::make_unique<cas::LanguageAnnotator>())
      .Add(std::make_unique<cas::StemmerAnnotator>());
  ASSERT_TRUE(pipeline.Process(&c).ok());
  ASSERT_EQ(c.GetMeta(cas::types::kMetaLanguage), "de");
  auto tokens = c.Select(cas::types::kToken);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1]->GetString(cas::types::kFeatureStem), "leit");
}

TEST(StemmerAnnotatorTest, UnknownLanguageKeepsNorm) {
  cas::Cas c("zz9 qq7 leitungen");
  cas::Pipeline pipeline;
  pipeline.Add(std::make_unique<cas::TokenizerAnnotator>())
      .Add(std::make_unique<cas::LanguageAnnotator>())
      .Add(std::make_unique<cas::StemmerAnnotator>());
  ASSERT_TRUE(pipeline.Process(&c).ok());
  if (c.GetMeta(cas::types::kMetaLanguage) == "unknown") {
    auto tokens = c.Select(cas::types::kToken);
    EXPECT_EQ(tokens[2]->GetString(cas::types::kFeatureStem), "leitungen");
  }
}

TEST(BagOfStemsTest, CollapsesInflectionalVariants) {
  kb::FeatureVocabulary vocabulary;
  kb::FeatureExtractor extractor(kb::FeatureModel::kBagOfStems, nullptr,
                                 &vocabulary);
  auto a = extractor.Extract("the hose is leaking badly");
  auto b = extractor.Extract("the hoses leaked badly");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // "hose(s)" and "leak(ing|ed)" collapse; "badly" -> "bad" both times;
  // stopwords are gone entirely.
  EXPECT_EQ(*a, *b);
}

TEST(BagOfStemsTest, StopwordsRemoved) {
  kb::FeatureVocabulary vocabulary;
  kb::FeatureExtractor extractor(kb::FeatureModel::kBagOfStems, nullptr,
                                 &vocabulary);
  auto features = extractor.Extract("the fan with it");
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->size(), 1u);
}

}  // namespace
}  // namespace qatk::text
