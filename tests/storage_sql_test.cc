#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/sql.h"

namespace qatk::db {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::OpenInMemory(256);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    session_ = std::make_unique<SqlSession>(db_.get());
  }

  ResultSet Must(const std::string& sql) {
    auto rs = session_->Execute(sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
    return rs.ok() ? *rs : ResultSet{};
  }

  Status Fail(const std::string& sql) {
    auto rs = session_->Execute(sql);
    EXPECT_FALSE(rs.ok()) << sql << " unexpectedly succeeded";
    return rs.status();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SqlSession> session_;
};

TEST_F(SqlTest, CreateInsertSelect) {
  Must("CREATE TABLE parts (part_id STRING, error_code STRING, qty INT)");
  Must("INSERT INTO parts VALUES ('P1', 'E1', 3), ('P1', 'E2', 5), "
       "('P2', 'E1', 7)");
  ResultSet rs = Must("SELECT * FROM parts");
  EXPECT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.schema.num_columns(), 3u);
}

TEST_F(SqlTest, WhereFiltersRows) {
  Must("CREATE TABLE t (a INT, b STRING)");
  Must("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, 'z')");
  ResultSet rs = Must("SELECT * FROM t WHERE b = 'x' AND a > 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0].value(0).AsInt64(), 3);
}

TEST_F(SqlTest, AllComparisonOperators) {
  Must("CREATE TABLE t (a INT)");
  Must("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  EXPECT_EQ(Must("SELECT * FROM t WHERE a = 3").rows.size(), 1u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE a != 3").rows.size(), 4u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE a <> 3").rows.size(), 4u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE a < 3").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE a <= 3").rows.size(), 3u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE a > 3").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE a >= 3").rows.size(), 3u);
}

TEST_F(SqlTest, ProjectionAndAlias) {
  Must("CREATE TABLE t (a INT, b STRING, c DOUBLE)");
  Must("INSERT INTO t VALUES (1, 'x', 2.5)");
  ResultSet rs = Must("SELECT b, a FROM t");
  ASSERT_EQ(rs.schema.num_columns(), 2u);
  EXPECT_EQ(rs.schema.column(0).name, "b");
  EXPECT_EQ(rs.rows[0].value(1).AsInt64(), 1);
}

TEST_F(SqlTest, GroupByCountOrderBy) {
  Must("CREATE TABLE parts (part_id STRING, error_code STRING)");
  Must("INSERT INTO parts VALUES ('P1','E1'),('P1','E1'),('P1','E2'),"
       "('P2','E1'),('P1','E1')");
  ResultSet rs = Must(
      "SELECT error_code, COUNT(*) AS n FROM parts WHERE part_id = 'P1' "
      "GROUP BY error_code ORDER BY n DESC");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0].value(0).AsString(), "E1");
  EXPECT_EQ(rs.rows[0].value(1).AsInt64(), 3);
  EXPECT_EQ(rs.rows[1].value(0).AsString(), "E2");
  EXPECT_EQ(rs.rows[1].value(1).AsInt64(), 1);
}

TEST_F(SqlTest, SumMinMaxAggregates) {
  Must("CREATE TABLE t (g STRING, v INT, d DOUBLE)");
  Must("INSERT INTO t VALUES ('a', 1, 0.5), ('a', 2, 1.5), ('b', 10, 2.0)");
  ResultSet rs = Must(
      "SELECT g, SUM(v) AS sv, MIN(v) AS mn, MAX(v) AS mx, SUM(d) AS sd "
      "FROM t GROUP BY g ORDER BY g");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0].value(1).AsInt64(), 3);
  EXPECT_EQ(rs.rows[0].value(2).AsInt64(), 1);
  EXPECT_EQ(rs.rows[0].value(3).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(rs.rows[0].value(4).AsDouble(), 2.0);
  EXPECT_EQ(rs.rows[1].value(1).AsInt64(), 10);
}

TEST_F(SqlTest, LimitOffset) {
  Must("CREATE TABLE t (a INT)");
  Must("INSERT INTO t VALUES (5), (3), (1), (4), (2)");
  ResultSet rs = Must("SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0].value(0).AsInt64(), 2);
  EXPECT_EQ(rs.rows[1].value(0).AsInt64(), 3);
}

TEST_F(SqlTest, IndexBackedEqualityQuery) {
  Must("CREATE TABLE kb (part_id STRING, concept INT)");
  Must("CREATE INDEX kb_part ON kb (part_id)");
  for (int i = 0; i < 40; ++i) {
    Must("INSERT INTO kb VALUES ('P" + std::to_string(i % 4) + "', " +
         std::to_string(i) + ")");
  }
  ResultSet rs = Must("SELECT * FROM kb WHERE part_id = 'P2'");
  EXPECT_EQ(rs.rows.size(), 10u);
  // Index + residual filter.
  ResultSet rs2 = Must("SELECT * FROM kb WHERE part_id = 'P2' AND concept > 20");
  for (const Tuple& row : rs2.rows) {
    EXPECT_EQ(row.value(0).AsString(), "P2");
    EXPECT_GT(row.value(1).AsInt64(), 20);
  }
  EXPECT_EQ(rs2.rows.size(), 5u);
}

TEST_F(SqlTest, DeleteWithWhere) {
  Must("CREATE TABLE t (a INT)");
  Must("INSERT INTO t VALUES (1), (2), (3), (4)");
  ResultSet rs = Must("DELETE FROM t WHERE a >= 3");
  EXPECT_EQ(rs.rows_affected, 2u);
  EXPECT_EQ(Must("SELECT * FROM t").rows.size(), 2u);
}

TEST_F(SqlTest, DeleteAll) {
  Must("CREATE TABLE t (a INT)");
  Must("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(Must("DELETE FROM t").rows_affected, 2u);
  EXPECT_EQ(Must("SELECT * FROM t").rows.size(), 0u);
}

TEST_F(SqlTest, StringEscaping) {
  Must("CREATE TABLE t (s STRING)");
  Must("INSERT INTO t VALUES ('it''s messy')");
  ResultSet rs = Must("SELECT * FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0].value(0).AsString(), "it's messy");
}

TEST_F(SqlTest, NullLiteral) {
  Must("CREATE TABLE t (a INT, b STRING)");
  Must("INSERT INTO t VALUES (1, NULL), (2, 'x')");
  ResultSet rs = Must("SELECT * FROM t WHERE b = NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0].value(0).AsInt64(), 1);
}

TEST_F(SqlTest, NegativeNumbersAndDoubles) {
  Must("CREATE TABLE t (a INT, d DOUBLE)");
  Must("INSERT INTO t VALUES (-5, -2.5)");
  ResultSet rs = Must("SELECT * FROM t WHERE a = -5");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rs.rows[0].value(1).AsDouble(), -2.5);
}

TEST_F(SqlTest, SyntaxErrors) {
  EXPECT_TRUE(Fail("SELEC * FROM t").IsInvalid());
  EXPECT_TRUE(Fail("SELECT FROM t").IsInvalid());
  Must("CREATE TABLE t (a INT)");
  EXPECT_TRUE(Fail("SELECT * FROM t WHERE a ~ 1").IsInvalid());
  EXPECT_TRUE(Fail("INSERT INTO t VALUES (1, 2) trailing").IsInvalid());
  EXPECT_TRUE(Fail("SELECT * FROM t WHERE a = 'unterminated").IsInvalid());
}

TEST_F(SqlTest, SemanticErrors) {
  Must("CREATE TABLE t (a INT)");
  EXPECT_TRUE(Fail("SELECT missing FROM t").IsKeyError());
  EXPECT_TRUE(Fail("SELECT * FROM nope").IsKeyError());
  EXPECT_TRUE(Fail("SELECT a, COUNT(*) FROM t").IsInvalid())
      << "non-grouped column with aggregate must fail";
  EXPECT_TRUE(Fail("CREATE TABLE t (a INT)").IsAlreadyExists());
}

TEST_F(SqlTest, ResultSetRendering) {
  Must("CREATE TABLE t (name STRING, n INT)");
  Must("INSERT INTO t VALUES ('alpha', 1)");
  std::string text = Must("SELECT * FROM t").ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1 row(s)"), std::string::npos);
}

TEST_F(SqlTest, UpdateWithWhere) {
  Must("CREATE TABLE t (k STRING, v INT)");
  Must("CREATE INDEX t_by_k ON t (k)");
  Must("INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)");
  ResultSet rs = Must("UPDATE t SET v = 99 WHERE k = 'b'");
  EXPECT_EQ(rs.rows_affected, 1u);
  ResultSet check = Must("SELECT v FROM t WHERE k = 'b'");
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_EQ(check.rows[0].value(0).AsInt64(), 99);
  // Index still finds the updated row exactly once.
  ResultSet via_index = Must("SELECT * FROM t WHERE k = 'b'");
  EXPECT_EQ(via_index.rows.size(), 1u);
}

TEST_F(SqlTest, UpdateMultipleColumnsAllRows) {
  Must("CREATE TABLE t (a INT, b STRING)");
  Must("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  ResultSet rs = Must("UPDATE t SET a = 0, b = 'z'");
  EXPECT_EQ(rs.rows_affected, 2u);
  ResultSet check = Must("SELECT * FROM t WHERE b = 'z'");
  EXPECT_EQ(check.rows.size(), 2u);
}

TEST_F(SqlTest, UpdateIndexedColumnMaintainsIndex) {
  Must("CREATE TABLE t (k STRING, v INT)");
  Must("CREATE INDEX t_by_k ON t (k)");
  Must("INSERT INTO t VALUES ('old', 7)");
  Must("UPDATE t SET k = 'new' WHERE k = 'old'");
  EXPECT_EQ(Must("SELECT * FROM t WHERE k = 'old'").rows.size(), 0u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE k = 'new'").rows.size(), 1u);
}

TEST_F(SqlTest, LikeOperator) {
  Must("CREATE TABLE t (s STRING)");
  Must("INSERT INTO t VALUES ('bremsschlauch'), ('bremse'), ('schlauch'), "
       "('Bremse')");
  EXPECT_EQ(Must("SELECT * FROM t WHERE s LIKE 'brems%'").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE s LIKE '%schlauch'").rows.size(),
            2u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE s LIKE '%rems%'").rows.size(), 3u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE s LIKE 'brems_'").rows.size(), 1u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE s LIKE 'bremse'").rows.size(), 1u)
      << "LIKE without wildcards is exact and case-sensitive";
}

TEST_F(SqlTest, InnerJoin) {
  Must("CREATE TABLE bundles (ref STRING, part_id STRING)");
  Must("CREATE TABLE descs (part_id STRING, text STRING)");
  Must("INSERT INTO bundles VALUES ('R1','P1'), ('R2','P2'), ('R3','P1'), "
       "('R4','P9')");
  Must("INSERT INTO descs VALUES ('P1','radio'), ('P2','pump')");
  ResultSet rs = Must(
      "SELECT * FROM bundles JOIN descs ON bundles.part_id = descs.part_id "
      "ORDER BY ref");
  ASSERT_EQ(rs.rows.size(), 3u) << "P9 has no description: inner join drops";
  // Collision suffix on the right side's part_id.
  EXPECT_TRUE(rs.schema.HasColumn("part_id"));
  EXPECT_TRUE(rs.schema.HasColumn("part_id_r"));
  EXPECT_EQ(rs.rows[0].value(0).AsString(), "R1");
  EXPECT_EQ(rs.rows[0].value(3).AsString(), "radio");
}

TEST_F(SqlTest, JoinConditionOrderIrrelevant) {
  Must("CREATE TABLE a (x STRING)");
  Must("CREATE TABLE b (y STRING)");
  Must("INSERT INTO a VALUES ('k')");
  Must("INSERT INTO b VALUES ('k')");
  EXPECT_EQ(Must("SELECT * FROM a JOIN b ON b.y = a.x").rows.size(), 1u);
  EXPECT_EQ(Must("SELECT * FROM a JOIN b ON a.x = b.y").rows.size(), 1u);
  EXPECT_TRUE(
      Fail("SELECT * FROM a JOIN b ON a.x = c.y").IsInvalid());
}

TEST_F(SqlTest, JoinWithWhereAndAggregation) {
  Must("CREATE TABLE bundles (ref STRING, part_id STRING)");
  Must("CREATE TABLE descs (part_id STRING, grp STRING)");
  Must("INSERT INTO bundles VALUES ('R1','P1'),('R2','P1'),('R3','P2'),"
       "('R4','P3')");
  Must("INSERT INTO descs VALUES ('P1','cool'),('P2','cool'),('P3','brake')");
  ResultSet rs = Must(
      "SELECT grp, COUNT(*) AS n FROM bundles JOIN descs "
      "ON bundles.part_id = descs.part_id WHERE grp = 'cool' GROUP BY grp");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0].value(1).AsInt64(), 3);
}

TEST_F(SqlTest, JoinDuplicateKeysCrossProduct) {
  Must("CREATE TABLE l (k STRING)");
  Must("CREATE TABLE r (k STRING)");
  Must("INSERT INTO l VALUES ('a'), ('a')");
  Must("INSERT INTO r VALUES ('a'), ('a'), ('a')");
  EXPECT_EQ(Must("SELECT * FROM l JOIN r ON l.k = r.k").rows.size(), 6u);
}

TEST_F(SqlTest, JoinNullKeysNeverMatch) {
  Must("CREATE TABLE l (k STRING)");
  Must("CREATE TABLE r (k STRING)");
  Must("INSERT INTO l VALUES (NULL), ('a')");
  Must("INSERT INTO r VALUES (NULL), ('a')");
  EXPECT_EQ(Must("SELECT * FROM l JOIN r ON l.k = r.k").rows.size(), 1u);
}

TEST_F(SqlTest, RangeQueriesUseIndexAndStayCorrect) {
  Must("CREATE TABLE t (n INT, tag STRING)");
  Must("CREATE INDEX t_n ON t (n)");
  for (int i = 0; i < 50; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i % 20) + ", 'x')");
  }
  // Closed, half-open, and strict ranges — all must agree with a full scan
  // (the planner's range path runs because t_n exists; correctness is the
  // assertion, plan shape is covered by the executor test).
  EXPECT_EQ(Must("SELECT * FROM t WHERE n >= 5 AND n < 8").rows.size(),
            Must("SELECT * FROM t WHERE tag = 'x' AND n >= 5 AND n < 8")
                .rows.size());
  // n = i %% 20 over 50 rows: n in 0..9 occurs 3x, n in 10..19 occurs 2x.
  EXPECT_EQ(Must("SELECT * FROM t WHERE n >= 18").rows.size(), 4u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n <= 1").rows.size(), 6u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n > 17 AND n <= 19").rows.size(),
            4u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n > 100").rows.size(), 0u);
}

TEST_F(SqlTest, StringRangeQueries) {
  Must("CREATE TABLE t (s STRING)");
  Must("CREATE INDEX t_s ON t (s)");
  Must("INSERT INTO t VALUES ('apple'), ('banana'), ('cherry'), ('date')");
  EXPECT_EQ(Must("SELECT * FROM t WHERE s >= 'b' AND s < 'd'").rows.size(),
            2u);
  EXPECT_EQ(Must("SELECT * FROM t WHERE s <= 'banana'").rows.size(), 2u)
      << "inclusive upper bound on strings";
}

TEST_F(SqlTest, BetweenOperator) {
  Must("CREATE TABLE t (n INT)");
  Must("INSERT INTO t VALUES (1), (2), (3), (4), (5)");
  EXPECT_EQ(Must("SELECT * FROM t WHERE n BETWEEN 2 AND 4").rows.size(),
            3u);
  EXPECT_EQ(
      Must("SELECT * FROM t WHERE n BETWEEN 2 AND 4 AND n != 3").rows.size(),
      2u)
      << "AND after the BETWEEN range continues the conjunction";
  EXPECT_EQ(Must("SELECT * FROM t WHERE n BETWEEN 9 AND 10").rows.size(),
            0u);
}

TEST_F(SqlTest, CaseInsensitiveKeywords) {
  Must("create table t (a int)");
  Must("insert into t values (7)");
  ResultSet rs = Must("select * from t where a = 7");
  EXPECT_EQ(rs.rows.size(), 1u);
}

}  // namespace
}  // namespace qatk::db
