#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/fault.h"
#include "common/retry.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/disk_manager.h"
#include "storage/torture.h"

namespace qatk::db {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveDbFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".journal").c_str());
}

// ---------------------------------------------------------------------------
// FaultInjectingDiskManager (decorator behavior)
// ---------------------------------------------------------------------------

TEST(FaultInjectingDiskManagerTest, ComposesWithInMemoryManager) {
  FaultInjector fault;
  fault.AddFault({"disk.write", 1, FaultKind::kPermanent, 0.0});
  FaultInjectingDiskManager disk(std::make_unique<InMemoryDiskManager>(),
                                 &fault);
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char page[kPageSize] = {};
  page[0] = 'x';
  EXPECT_TRUE(disk.WritePage(*id, page).ok());  // countdown 1: passes through
  Status st = disk.WritePage(*id, page);        // fires
  EXPECT_TRUE(st.IsIOError());
  // A permanent fault is one-shot; the manager works again afterwards.
  EXPECT_TRUE(disk.WritePage(*id, page).ok());
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(*id, out).ok());
  EXPECT_EQ(out[0], 'x');
}

TEST(FaultInjectingDiskManagerTest, TransientFaultIsRetryable) {
  FaultInjector fault;
  fault.AddFault({"disk.read", 0, FaultKind::kTransient, 0.0});
  FaultInjectingDiskManager disk(std::make_unique<InMemoryDiskManager>(),
                                 &fault);
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char out[kPageSize];
  RetryPolicy retry({.max_attempts = 3,
                     .base_backoff = std::chrono::microseconds(0)});
  Status st = retry.Run([&] { return disk.ReadPage(*id, out); });
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_FALSE(fault.crashed());
}

TEST(FaultInjectingDiskManagerTest, CrashFaultIsSticky) {
  FaultInjector fault;
  fault.AddFault({"disk.sync", 0, FaultKind::kCrash, 0.0});
  FaultInjectingDiskManager disk(std::make_unique<InMemoryDiskManager>(),
                                 &fault);
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(disk.Sync().IsUnavailable());
  EXPECT_TRUE(fault.crashed());
  // Every operation after the crash fails, whatever its kind.
  char out[kPageSize];
  EXPECT_FALSE(disk.ReadPage(*id, out).ok());
  EXPECT_FALSE(disk.AllocatePage().ok());
}

TEST(FaultInjectingDiskManagerTest, TornWritePersistsOnlyAPrefix) {
  FaultInjector fault;
  fault.AddFault({"disk.write", 0, FaultKind::kTorn, 0.5});
  auto inner = std::make_unique<InMemoryDiskManager>();
  InMemoryDiskManager* inner_raw = inner.get();
  FaultInjectingDiskManager disk(std::move(inner), &fault);
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char page[kPageSize];
  std::memset(page, 'a', kPageSize);
  Status st = disk.WritePage(*id, page);
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_TRUE(fault.crashed());
  char out[kPageSize];
  ASSERT_TRUE(inner_raw->ReadPage(*id, out).ok());
  EXPECT_EQ(out[0], 'a');                // prefix reached "disk"
  EXPECT_EQ(out[kPageSize - 1], '\0');   // tail kept its old bytes
}

// ---------------------------------------------------------------------------
// Page checksums
// ---------------------------------------------------------------------------

class PageChecksumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test path: ctest runs each test as its own process, concurrently.
    path_ = TempPath(
        std::string("checksum_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".qdb");
    RemoveDbFiles(path_);
  }
  void TearDown() override { RemoveDbFiles(path_); }

  // Creates a database with enough rows to fill a few heap pages.
  void CreatePopulatedDb() {
    auto db = Database::OpenFile(path_, 16);
    ASSERT_TRUE(db.ok()) << db.status();
    Schema schema({{"id", TypeId::kInt64}, {"val", TypeId::kString}});
    ASSERT_TRUE((*db)->CreateTable("t", schema).ok());
    for (int64_t i = 0; i < 50; ++i) {
      Tuple tuple(
          std::vector<Value>{Value(i), Value(std::string(200, 'v'))});
      ASSERT_TRUE((*db)->Insert("t", tuple).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }

  std::string path_;
};

TEST_F(PageChecksumTest, SingleFlippedBitSurfacesAsDataLoss) {
  CreatePopulatedDb();
  // Flip one bit inside a heap page (page 1; page 0 is the catalog).
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(kPageSize) + 100, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(kPageSize) + 100, SEEK_SET), 0);
    std::fputc(c ^ 0x04, f);
    std::fclose(f);
  }
  auto db = Database::OpenFile(path_, 16);
  ASSERT_TRUE(db.ok()) << db.status();
  Status scan = (*db)->ScanTable("t", [](const Rid&, const Tuple&) {
    return true;
  });
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.IsDataLoss()) << scan;
}

TEST_F(PageChecksumTest, IntactPagesVerify) {
  CreatePopulatedDb();
  auto db = Database::OpenFile(path_, 4);  // tiny pool: every page re-read
  ASSERT_TRUE(db.ok()) << db.status();
  size_t rows = 0;
  Status scan = (*db)->ScanTable("t", [&](const Rid&, const Tuple&) {
    ++rows;
    return true;
  });
  EXPECT_TRUE(scan.ok()) << scan;
  EXPECT_EQ(rows, 50u);
}

TEST_F(PageChecksumTest, CorruptedCatalogPageFailsOpen) {
  CreatePopulatedDb();
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  auto db = Database::OpenFile(path_, 16);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsDataLoss()) << db.status();
}

// ---------------------------------------------------------------------------
// Crash-recovery torture
// ---------------------------------------------------------------------------

// Runs `count` schedules starting at `first_seed`; every recovered state
// must match the shadow model. Failures print the seed and the fault
// schedule so the exact run replays with RunCrashSchedule({.seed = ...}).
void RunTortureRange(uint64_t first_seed, int count, const char* tag) {
  TortureOptions options;
  options.path = TempPath(std::string("torture_") + tag + ".qdb");
  int crashed = 0;
  for (int i = 0; i < count; ++i) {
    options.seed = first_seed + static_cast<uint64_t>(i);
    TortureReport report = RunCrashSchedule(options);
    ASSERT_TRUE(report.ok)
        << "torture seed " << options.seed << " failed: " << report.detail
        << "\n"
        << report.schedule;
    if (report.crashed) ++crashed;
  }
  // The crash point is drawn from the dry run's op count, so the vast
  // majority of schedules must actually crash mid-workload.
  EXPECT_GT(crashed, count / 2);
  RemoveDbFiles(options.path);
}

TEST(CrashTortureTest, Schedules0) { RunTortureRange(1, 250, "s0"); }
TEST(CrashTortureTest, Schedules1) { RunTortureRange(10001, 250, "s1"); }
TEST(CrashTortureTest, Schedules2) { RunTortureRange(20001, 250, "s2"); }
TEST(CrashTortureTest, Schedules3) { RunTortureRange(30001, 250, "s3"); }

TEST(CrashTortureTest, FailureReportCarriesSchedule) {
  TortureOptions options;
  options.seed = 42;
  options.path = TempPath("torture_report.qdb");
  TortureReport report = RunCrashSchedule(options);
  EXPECT_TRUE(report.ok) << report.detail;
  // The schedule dump is always present so any failure is replayable.
  EXPECT_NE(report.schedule.find("FaultInjector schedule"), std::string::npos);
  RemoveDbFiles(options.path);
}

}  // namespace
}  // namespace qatk::db
