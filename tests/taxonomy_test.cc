#include <gtest/gtest.h>

#include "cas/annotators.h"
#include "cas/cas.h"
#include "taxonomy/concept_annotator.h"
#include "taxonomy/taxonomy.h"
#include "taxonomy/trie.h"
#include "taxonomy/xml.h"

namespace qatk::tax {
namespace {

using text::Language;

Concept MakeConcept(int64_t id, Category category, const std::string& label) {
  Concept c;
  c.id = id;
  c.category = category;
  c.label = label;
  return c;
}

/// Small taxonomy used across the annotator tests: mirrors the paper's
/// "mud guard"/"splashboard"/"fender" example and Fig. 10.
Taxonomy TestTaxonomy() {
  Taxonomy taxonomy;
  Concept fender = MakeConcept(101, Category::kComponent, "Fender");
  fender.synonyms[Language::kEnglish] = {"mud guard", "splashboard",
                                         "fender"};
  fender.synonyms[Language::kGerman] = {"Kotflügel", "Schmutzfänger"};
  QATK_CHECK_OK(taxonomy.Add(std::move(fender)));

  Concept fan = MakeConcept(102, Category::kComponent, "Fan");
  fan.synonyms[Language::kGerman] = {"Lüfter"};
  fan.synonyms[Language::kEnglish] = {"fan"};
  QATK_CHECK_OK(taxonomy.Add(std::move(fan)));

  Concept squeak = MakeConcept(201, Category::kSymptom, "Squeak");
  squeak.synonyms[Language::kEnglish] = {"squeak", "squeaking noise"};
  squeak.synonyms[Language::kGerman] = {"quietschen"};
  QATK_CHECK_OK(taxonomy.Add(std::move(squeak)));

  Concept hose = MakeConcept(103, Category::kComponent, "BrakeHose");
  hose.synonyms[Language::kEnglish] = {"brake hose"};
  hose.synonyms[Language::kGerman] = {"Bremsschlauch"};
  QATK_CHECK_OK(taxonomy.Add(std::move(hose)));
  return taxonomy;
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

TEST(TaxonomyTest, AddAndFind) {
  Taxonomy taxonomy = TestTaxonomy();
  EXPECT_EQ(taxonomy.size(), 4u);
  auto fan = taxonomy.Find(102);
  ASSERT_TRUE(fan.ok());
  EXPECT_EQ((*fan)->label, "Fan");
  EXPECT_TRUE(taxonomy.Find(999).status().IsKeyError());
}

TEST(TaxonomyTest, RejectsDuplicateAndZeroIds) {
  Taxonomy taxonomy;
  ASSERT_TRUE(taxonomy.Add(MakeConcept(1, Category::kSymptom, "X")).ok());
  EXPECT_TRUE(
      taxonomy.Add(MakeConcept(1, Category::kSymptom, "Y")).IsAlreadyExists());
  EXPECT_TRUE(
      taxonomy.Add(MakeConcept(0, Category::kSymptom, "Z")).IsInvalid());
}

TEST(TaxonomyTest, ByCategoryFilters) {
  Taxonomy taxonomy = TestTaxonomy();
  EXPECT_EQ(taxonomy.ByCategory(Category::kComponent).size(), 3u);
  EXPECT_EQ(taxonomy.ByCategory(Category::kSymptom).size(), 1u);
  EXPECT_EQ(taxonomy.ByCategory(Category::kSolution).size(), 0u);
}

TEST(TaxonomyTest, LanguageCounts) {
  Taxonomy taxonomy = TestTaxonomy();
  EXPECT_EQ(taxonomy.CountWithLanguage(Language::kEnglish), 4u);
  EXPECT_EQ(taxonomy.CountWithLanguage(Language::kGerman), 4u);
  EXPECT_EQ(taxonomy.CountSynonyms(Language::kEnglish), 7u);
}

TEST(TaxonomyTest, AddSynonym) {
  Taxonomy taxonomy = TestTaxonomy();
  ASSERT_TRUE(taxonomy.AddSynonym(102, Language::kEnglish, "blower").ok());
  EXPECT_EQ((*taxonomy.Find(102))->synonyms.at(Language::kEnglish).size(),
            2u);
  EXPECT_TRUE(
      taxonomy.AddSynonym(999, Language::kEnglish, "x").IsKeyError());
}

TEST(TaxonomyTest, ValidatePassesOnWellFormed) {
  Taxonomy taxonomy = TestTaxonomy();
  EXPECT_TRUE(taxonomy.Validate().ok());
}

TEST(TaxonomyTest, ValidateCatchesMissingParent) {
  Taxonomy taxonomy;
  Concept c = MakeConcept(5, Category::kSymptom, "X");
  c.parent_id = 99;
  c.synonyms[Language::kEnglish] = {"x"};
  ASSERT_TRUE(taxonomy.Add(std::move(c)).ok());
  EXPECT_TRUE(taxonomy.Validate().IsInvalid());
}

TEST(TaxonomyTest, ValidateCatchesSelfParentAndCycle) {
  Taxonomy taxonomy;
  Concept self = MakeConcept(1, Category::kSymptom, "Self");
  self.parent_id = 1;
  self.synonyms[Language::kEnglish] = {"s"};
  ASSERT_TRUE(taxonomy.Add(std::move(self)).ok());
  EXPECT_TRUE(taxonomy.Validate().IsInvalid());

  Taxonomy cyclic;
  Concept a = MakeConcept(1, Category::kSymptom, "A");
  a.parent_id = 2;
  a.synonyms[Language::kEnglish] = {"a"};
  Concept b = MakeConcept(2, Category::kSymptom, "B");
  b.parent_id = 1;
  b.synonyms[Language::kEnglish] = {"b"};
  ASSERT_TRUE(cyclic.Add(std::move(a)).ok());
  ASSERT_TRUE(cyclic.Add(std::move(b)).ok());
  EXPECT_TRUE(cyclic.Validate().IsInvalid());
}

TEST(TaxonomyTest, ValidateCatchesSynonymlessLeaf) {
  Taxonomy taxonomy;
  Concept root = MakeConcept(1, Category::kSymptom, "Root");
  ASSERT_TRUE(taxonomy.Add(std::move(root)).ok());
  Concept leaf = MakeConcept(2, Category::kSymptom, "Leaf");
  leaf.parent_id = 1;
  ASSERT_TRUE(taxonomy.Add(std::move(leaf)).ok());
  EXPECT_TRUE(taxonomy.Validate().IsInvalid());
}

// ---------------------------------------------------------------------------
// XML round trip
// ---------------------------------------------------------------------------

TEST(TaxonomyXmlTest, RoundTrip) {
  Taxonomy original = TestTaxonomy();
  std::string xml = TaxonomyToXml(original);
  auto loaded = TaxonomyFromXml(xml);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), original.size());
  auto fender = loaded->Find(101);
  ASSERT_TRUE(fender.ok());
  EXPECT_EQ((*fender)->label, "Fender");
  EXPECT_EQ((*fender)->category, Category::kComponent);
  const auto& en = (*fender)->synonyms.at(Language::kEnglish);
  EXPECT_EQ(en.size(), 3u);
  EXPECT_NE(std::find(en.begin(), en.end(), "mud guard"), en.end());
  // Umlauts survive the round trip.
  const auto& de = (*fender)->synonyms.at(Language::kGerman);
  EXPECT_NE(std::find(de.begin(), de.end(), "Kotflügel"), de.end());
}

TEST(TaxonomyXmlTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/taxonomy_test.xml";
  Taxonomy original = TestTaxonomy();
  ASSERT_TRUE(SaveTaxonomyFile(original, path).ok());
  auto loaded = LoadTaxonomyFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
}

TEST(TaxonomyXmlTest, RejectsMalformedXml) {
  EXPECT_TRUE(TaxonomyFromXml("<taxonomy>").status().IsInvalid());
  EXPECT_TRUE(TaxonomyFromXml("<wrong/>").status().IsInvalid());
  EXPECT_TRUE(TaxonomyFromXml("<taxonomy><concept/></taxonomy>")
                  .status()
                  .IsInvalid());  // Missing attributes.
  EXPECT_TRUE(
      TaxonomyFromXml("<taxonomy><bogus/></taxonomy>").status().IsInvalid());
}

TEST(XmlParserTest, EntitiesAndAttributes) {
  auto root = ParseXml("<a x=\"1 &amp; 2\">t &lt;b&gt;</a>");
  ASSERT_TRUE(root.ok()) << root.status();
  EXPECT_EQ((*root)->attributes.at("x"), "1 & 2");
  EXPECT_EQ((*root)->text, "t <b>");
}

TEST(XmlParserTest, NestedElementsAndComments) {
  auto root = ParseXml(
      "<?xml version=\"1.0\"?><!-- top --><a><b/><!-- mid --><c k='v'>x</c>"
      "</a>");
  ASSERT_TRUE(root.ok()) << root.status();
  EXPECT_EQ((*root)->children.size(), 2u);
  EXPECT_EQ((*root)->FirstChild("c")->attributes.at("k"), "v");
  EXPECT_EQ((*root)->FirstChild("missing"), nullptr);
}

TEST(XmlParserTest, MismatchedTagsRejected) {
  EXPECT_TRUE(ParseXml("<a><b></a></b>").status().IsInvalid());
  EXPECT_TRUE(ParseXml("<a>").status().IsInvalid());
  EXPECT_TRUE(ParseXml("<a/><b/>").status().IsInvalid());
}

// ---------------------------------------------------------------------------
// TokenTrie
// ---------------------------------------------------------------------------

TEST(TokenTrieTest, SingleTokenMatch) {
  TokenTrie trie;
  trie.Insert({"fan"}, 1);
  auto match = trie.LongestMatch({"the", "fan", "broke"}, 1);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->length, 1u);
  EXPECT_EQ(match->concepts, std::vector<int64_t>{1});
  EXPECT_FALSE(trie.LongestMatch({"the", "fan", "broke"}, 0).has_value());
}

TEST(TokenTrieTest, LongestMatchWins) {
  TokenTrie trie;
  trie.Insert({"brake"}, 1);
  trie.Insert({"brake", "hose"}, 2);
  auto match = trie.LongestMatch({"brake", "hose", "leaks"}, 0);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->length, 2u);
  EXPECT_EQ(match->concepts, std::vector<int64_t>{2});
}

TEST(TokenTrieTest, FallsBackToShorterMatch) {
  TokenTrie trie;
  trie.Insert({"brake"}, 1);
  trie.Insert({"brake", "hose"}, 2);
  auto match = trie.LongestMatch({"brake", "pad"}, 0);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->length, 1u);
  EXPECT_EQ(match->concepts, std::vector<int64_t>{1});
}

TEST(TokenTrieTest, AmbiguousSurfaceYieldsAllConcepts) {
  TokenTrie trie;
  trie.Insert({"unit"}, 10);
  trie.Insert({"unit"}, 20);
  auto match = trie.LongestMatch({"unit"}, 0);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->concepts, (std::vector<int64_t>{10, 20}));
}

TEST(TokenTrieTest, DuplicateInsertIsIdempotent) {
  TokenTrie trie;
  trie.Insert({"x"}, 1);
  trie.Insert({"x"}, 1);
  EXPECT_EQ(trie.entry_count(), 1u);
}

TEST(TokenTrieTest, ContainsSequence) {
  TokenTrie trie;
  trie.Insert({"a", "b"}, 1);
  EXPECT_TRUE(trie.ContainsSequence({"a", "b"}));
  EXPECT_FALSE(trie.ContainsSequence({"a"}));  // Prefix, not an entry.
  EXPECT_FALSE(trie.ContainsSequence({"b"}));
}

TEST(TokenTrieTest, EmptySequenceIgnored) {
  TokenTrie trie;
  trie.Insert({}, 1);
  EXPECT_EQ(trie.entry_count(), 0u);
  EXPECT_FALSE(trie.LongestMatch({"a"}, 0).has_value());
}

// ---------------------------------------------------------------------------
// TrieConceptAnnotator
// ---------------------------------------------------------------------------

cas::Cas Annotate(const Taxonomy& taxonomy, const std::string& document) {
  cas::Cas c(document);
  cas::TokenizerAnnotator tokenizer;
  QATK_CHECK_OK(tokenizer.Process(&c));
  TrieConceptAnnotator annotator(taxonomy);
  QATK_CHECK_OK(annotator.Process(&c));
  return c;
}

std::vector<int64_t> ConceptIds(const cas::Cas& c) {
  std::vector<int64_t> ids;
  for (const cas::Annotation* a : c.Select(cas::types::kConcept)) {
    ids.push_back(a->GetInt(cas::types::kFeatureConceptId));
  }
  return ids;
}

TEST(TrieConceptAnnotatorTest, FindsSingleWordConcepts) {
  Taxonomy taxonomy = TestTaxonomy();
  cas::Cas c = Annotate(taxonomy, "the fan is broken");
  EXPECT_EQ(ConceptIds(c), std::vector<int64_t>{102});
}

TEST(TrieConceptAnnotatorTest, SynonymsCollapseToSameConcept) {
  Taxonomy taxonomy = TestTaxonomy();
  // The paper's example: "mud guard", "splashboard" and "fender" all map to
  // the same concept id.
  for (const std::string& doc :
       {"mud guard damaged", "splashboard damaged", "fender damaged"}) {
    cas::Cas c = Annotate(taxonomy, doc);
    EXPECT_EQ(ConceptIds(c), std::vector<int64_t>{101}) << doc;
  }
}

TEST(TrieConceptAnnotatorTest, MultilingualMatching) {
  Taxonomy taxonomy = TestTaxonomy();
  cas::Cas c = Annotate(taxonomy, "Lüfter defekt, fan broken");
  EXPECT_EQ(ConceptIds(c), (std::vector<int64_t>{102, 102}));
}

TEST(TrieConceptAnnotatorTest, FoldedUmlautVariantMatches) {
  Taxonomy taxonomy = TestTaxonomy();
  // "Luefter" (ASCII spelling) must match the "Lüfter" synonym.
  cas::Cas c = Annotate(taxonomy, "Luefter funktioniert nicht");
  EXPECT_EQ(ConceptIds(c), std::vector<int64_t>{102});
}

TEST(TrieConceptAnnotatorTest, MultiwordCaptureAndEnclosureElimination) {
  Taxonomy taxonomy = TestTaxonomy();
  Concept brake = MakeConcept(104, Category::kComponent, "Brake");
  brake.synonyms[Language::kEnglish] = {"brake"};
  QATK_CHECK_OK(taxonomy.Add(std::move(brake)));
  cas::Cas c = Annotate(taxonomy, "the brake hose leaks");
  // "brake hose" wins; the enclosed "brake" match is eliminated.
  EXPECT_EQ(ConceptIds(c), std::vector<int64_t>{103});
  auto concepts = c.Select(cas::types::kConcept);
  ASSERT_EQ(concepts.size(), 1u);
  EXPECT_EQ(c.CoveredText(*concepts[0]), "brake hose");
}

TEST(TrieConceptAnnotatorTest, PunctuationInsideMultiwordIsTransparent) {
  Taxonomy taxonomy = TestTaxonomy();
  // Tokenizer splits "brake-hose" into brake / - / hose; the annotator
  // matches over word tokens only, so the multiword still matches.
  cas::Cas c = Annotate(taxonomy, "brake-hose leaking");
  EXPECT_EQ(ConceptIds(c), std::vector<int64_t>{103});
}

TEST(TrieConceptAnnotatorTest, CategoryFeatureSet) {
  Taxonomy taxonomy = TestTaxonomy();
  cas::Cas c = Annotate(taxonomy, "loud squeak from front");
  auto concepts = c.Select(cas::types::kConcept);
  ASSERT_EQ(concepts.size(), 1u);
  EXPECT_EQ(concepts[0]->GetString(cas::types::kFeatureCategory), "symptom");
}

TEST(TrieConceptAnnotatorTest, NoConceptsInUnrelatedText) {
  Taxonomy taxonomy = TestTaxonomy();
  cas::Cas c = Annotate(taxonomy, "completely unrelated sentence here");
  EXPECT_TRUE(ConceptIds(c).empty());
}

TEST(TrieConceptAnnotatorTest, SynonymExpansionSubstitutesWords) {
  Taxonomy taxonomy;
  Concept hose = MakeConcept(1, Category::kComponent, "BrakeHose");
  hose.synonyms[Language::kEnglish] = {"brake hose"};
  QATK_CHECK_OK(taxonomy.Add(std::move(hose)));
  Concept brake = MakeConcept(2, Category::kComponent, "Brake");
  brake.synonyms[Language::kEnglish] = {"brake", "stopper"};
  QATK_CHECK_OK(taxonomy.Add(std::move(brake)));
  // With expansion, "stopper hose" is generated as a variant of
  // "brake hose" because "stopper" is a synonym of "brake".
  TrieConceptAnnotator::Options options;
  options.expand_synonyms = true;
  cas::Cas c("stopper hose cracked");
  cas::TokenizerAnnotator tokenizer;
  QATK_CHECK_OK(tokenizer.Process(&c));
  TrieConceptAnnotator annotator(taxonomy, options);
  QATK_CHECK_OK(annotator.Process(&c));
  std::vector<int64_t> ids = ConceptIds(c);
  EXPECT_NE(std::find(ids.begin(), ids.end(), 1), ids.end());
}

TEST(TrieConceptAnnotatorTest, ExpansionCanBeDisabled) {
  Taxonomy taxonomy;
  Concept hose = MakeConcept(1, Category::kComponent, "BrakeHose");
  hose.synonyms[Language::kEnglish] = {"brake hose"};
  QATK_CHECK_OK(taxonomy.Add(std::move(hose)));
  Concept brake = MakeConcept(2, Category::kComponent, "Brake");
  brake.synonyms[Language::kEnglish] = {"brake", "stopper"};
  QATK_CHECK_OK(taxonomy.Add(std::move(brake)));
  TrieConceptAnnotator::Options options;
  options.expand_synonyms = false;
  cas::Cas c("stopper hose cracked");
  cas::TokenizerAnnotator tokenizer;
  QATK_CHECK_OK(tokenizer.Process(&c));
  TrieConceptAnnotator annotator(taxonomy, options);
  QATK_CHECK_OK(annotator.Process(&c));
  std::vector<int64_t> ids = ConceptIds(c);
  EXPECT_EQ(std::find(ids.begin(), ids.end(), 1), ids.end());
}

// ---------------------------------------------------------------------------
// LegacyConceptAnnotator (the deficient baseline)
// ---------------------------------------------------------------------------

TEST(LegacyConceptAnnotatorTest, MatchesExactGermanSurfaceOnly) {
  Taxonomy taxonomy = TestTaxonomy();
  cas::Cas c("Lüfter defekt");
  cas::TokenizerAnnotator tokenizer;
  QATK_CHECK_OK(tokenizer.Process(&c));
  LegacyConceptAnnotator legacy(taxonomy);
  QATK_CHECK_OK(legacy.Process(&c));
  EXPECT_EQ(c.CountType(cas::types::kConcept), 1u);
}

TEST(LegacyConceptAnnotatorTest, MissesCaseAndSpellingVariants) {
  Taxonomy taxonomy = TestTaxonomy();
  for (const std::string& doc : {"LÜFTER defekt", "Luefter defekt",
                                 "luefter kaputt"}) {
    cas::Cas c(doc);
    cas::TokenizerAnnotator tokenizer;
    QATK_CHECK_OK(tokenizer.Process(&c));
    LegacyConceptAnnotator legacy(taxonomy);
    QATK_CHECK_OK(legacy.Process(&c));
    EXPECT_EQ(c.CountType(cas::types::kConcept), 0u) << doc;
  }
}

TEST(LegacyConceptAnnotatorTest, MissesEnglishAndMultiwords) {
  Taxonomy taxonomy = TestTaxonomy();
  cas::Cas c("fan broken, brake hose leaks, mud guard bent");
  cas::TokenizerAnnotator tokenizer;
  QATK_CHECK_OK(tokenizer.Process(&c));
  LegacyConceptAnnotator legacy(taxonomy);
  QATK_CHECK_OK(legacy.Process(&c));
  EXPECT_EQ(c.CountType(cas::types::kConcept), 0u);
}

TEST(AnnotatorComparisonTest, TrieRecallDominatesLegacy) {
  Taxonomy taxonomy = TestTaxonomy();
  const std::string docs[] = {
      "Lüfter defekt",
      "Luefter defekt",
      "fan broken",
      "brake hose leaks",
      "quietschen beim bremsen",
  };
  int trie_hits = 0;
  int legacy_hits = 0;
  for (const std::string& doc : docs) {
    cas::Cas c(doc);
    cas::TokenizerAnnotator tokenizer;
    QATK_CHECK_OK(tokenizer.Process(&c));
    TrieConceptAnnotator trie(taxonomy);
    QATK_CHECK_OK(trie.Process(&c));
    if (c.CountType(cas::types::kConcept) > 0) ++trie_hits;

    cas::Cas c2(doc);
    QATK_CHECK_OK(tokenizer.Process(&c2));
    LegacyConceptAnnotator legacy(taxonomy);
    QATK_CHECK_OK(legacy.Process(&c2));
    if (c2.CountType(cas::types::kConcept) > 0) ++legacy_hits;
  }
  EXPECT_EQ(trie_hits, 5);
  EXPECT_LT(legacy_hits, 3);
}

}  // namespace
}  // namespace qatk::tax
