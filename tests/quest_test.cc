#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "datagen/nhtsa.h"
#include "datagen/oem.h"
#include "datagen/world.h"
#include "quest/comparison.h"
#include "quest/recommendation_service.h"

namespace qatk::quest {
namespace {

datagen::WorldConfig SmallWorld() {
  datagen::WorldConfig config;
  config.num_parts = 6;
  config.num_article_codes = 40;
  config.num_error_codes = 80;
  config.max_codes_largest_part = 25;
  config.mid_part_min_codes = 8;
  config.mid_part_max_codes = 20;
  config.small_parts = 2;
  config.num_components = 80;
  config.num_symptoms = 70;
  config.num_locations = 20;
  config.num_solutions = 20;
  config.components_per_part = 6;
  return config;
}

class RecommendationServiceTest : public ::testing::Test {
 protected:
  RecommendationServiceTest() : world_(SmallWorld()) {
    datagen::OemConfig oem;
    oem.num_bundles = 600;
    datagen::OemCorpusGenerator generator(&world_, oem);
    corpus_ = generator.Generate();
  }

  datagen::DomainWorld world_;
  kb::Corpus corpus_;
};

TEST_F(RecommendationServiceTest, UntrainedServiceRefuses) {
  RecommendationService service(&world_.taxonomy(), {});
  EXPECT_FALSE(service.trained());
  EXPECT_TRUE(
      service.Recommend(corpus_.bundles[0]).status().IsInvalid());
}

TEST_F(RecommendationServiceTest, TrainOnceOnly) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  EXPECT_TRUE(service.trained());
  EXPECT_TRUE(service.Train(corpus_).IsInvalid());
}

TEST_F(RecommendationServiceTest, TopTenCutoffAndOrdering) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  // Pick a bundle from the largest part (many codes -> truncation).
  const kb::DataBundle* probe = nullptr;
  for (const kb::DataBundle& bundle : corpus_.bundles) {
    if (bundle.part_id == "P01") {
      probe = &bundle;
      break;
    }
  }
  ASSERT_NE(probe, nullptr);
  auto recommendation = service.Recommend(*probe);
  ASSERT_TRUE(recommendation.ok()) << recommendation.status();
  EXPECT_LE(recommendation->top.size(), 10u);
  for (size_t i = 1; i < recommendation->top.size(); ++i) {
    EXPECT_GE(recommendation->top[i - 1].score,
              recommendation->top[i].score);
  }
}

TEST_F(RecommendationServiceTest, RecommendationQualityOnTrainingData) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  size_t hits = 0;
  size_t total = 0;
  for (size_t i = 0; i < corpus_.bundles.size(); i += 7) {
    auto recommendation = service.Recommend(corpus_.bundles[i]);
    ASSERT_TRUE(recommendation.ok());
    ++total;
    for (const core::ScoredCode& scored : recommendation->top) {
      if (scored.error_code == corpus_.bundles[i].error_code) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.6)
      << "top-10 should usually contain the assigned code";
}

TEST_F(RecommendationServiceTest, FullListFallbackSortedByFrequency) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  auto list = service.FullListForPart("P01");
  ASSERT_GT(list.size(), 5u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].score, list[i].score);
  }
  EXPECT_TRUE(service.FullListForPart("P99").empty());
}

TEST_F(RecommendationServiceTest, DefineErrorCode) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  size_t before = service.FullListForPart("P01").size();
  ASSERT_TRUE(
      service.DefineErrorCode("P01", "E_NEW", "a brand new failure mode")
          .ok());
  auto list = service.FullListForPart("P01");
  EXPECT_EQ(list.size(), before + 1);
  EXPECT_EQ(list.back().error_code, "E_NEW");
  EXPECT_EQ(*service.DescribeCode("E_NEW"), "a brand new failure mode");
  EXPECT_TRUE(
      service.DefineErrorCode("P01", "E_NEW", "again").IsAlreadyExists());
}

TEST_F(RecommendationServiceTest, FullListDedupsManualCodeAfterConfirm) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  ASSERT_TRUE(
      service.DefineErrorCode("P01", "E_MANUAL", "manually defined").ok());

  // Confirm an assignment to the manually defined code: it now has a
  // training-set frequency and must not appear twice in the full list.
  kb::DataBundle bundle;
  bundle.reference_number = "CONF1";
  bundle.part_id = "P01";
  bundle.mechanic_report = "some failure description";
  ASSERT_TRUE(service.ConfirmAssignment(bundle, "E_MANUAL").ok());

  size_t occurrences = 0;
  double score = -1;
  for (const core::ScoredCode& scored : service.FullListForPart("P01")) {
    if (scored.error_code == "E_MANUAL") {
      ++occurrences;
      score = scored.score;
    }
  }
  EXPECT_EQ(occurrences, 1u) << "manual code must not be listed twice";
  EXPECT_GT(score, 0.0) << "the frequency-ranked entry wins over the "
                           "score-0 manual entry";
}

TEST_F(RecommendationServiceTest, DefineErrorCodeKeepsFirstDescription) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  ASSERT_TRUE(
      service.DefineErrorCode("P01", "E_SHARED", "first description").ok());

  // A different part registering the same code with a different
  // description must not silently clobber the global description.
  EXPECT_TRUE(service.DefineErrorCode("P02", "E_SHARED", "other description")
                  .IsAlreadyExists());
  EXPECT_EQ(*service.DescribeCode("E_SHARED"), "first description");

  // Registering it for another part with the same description is fine.
  ASSERT_TRUE(
      service.DefineErrorCode("P02", "E_SHARED", "first description").ok());
  bool in_p02 = false;
  for (const core::ScoredCode& scored : service.FullListForPart("P02")) {
    if (scored.error_code == "E_SHARED") in_p02 = true;
  }
  EXPECT_TRUE(in_p02);
}

TEST_F(RecommendationServiceTest, ConcurrentServingSmoke) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());

  constexpr size_t kReaders = 4;
  constexpr size_t kIterations = 40;
  std::atomic<size_t> failures{0};
  std::atomic<size_t> recommendations{0};

  std::vector<std::thread> threads;
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (size_t i = 0; i < kIterations; ++i) {
        const kb::DataBundle& bundle =
            corpus_.bundles[(r * kIterations + i * 13) %
                            corpus_.bundles.size()];
        auto recommendation = service.Recommend(bundle);
        if (!recommendation.ok()) {
          failures.fetch_add(1);
          continue;
        }
        recommendations.fetch_add(1);
        service.FullListForPart(bundle.part_id);
        service.DescribeCode(bundle.error_code).status();
      }
    });
  }
  threads.emplace_back([&] {
    for (size_t i = 0; i < kIterations; ++i) {
      kb::DataBundle novel;
      novel.reference_number = "CONC" + std::to_string(i);
      novel.part_id = corpus_.bundles[i % corpus_.bundles.size()].part_id;
      novel.mechanic_report = "interleaved confirm number " +
                              std::to_string(i);
      if (!service.ConfirmAssignment(novel, "E_CONC").ok()) {
        failures.fetch_add(1);
      }
      if (i % 8 == 0) {
        // Distinct code per definition; duplicates would be AlreadyExists.
        Status st = service.DefineErrorCode(
            novel.part_id, "E_DEF" + std::to_string(i), "defined under load");
        if (!st.ok() && !st.IsAlreadyExists()) failures.fetch_add(1);
      }
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(recommendations.load(), kReaders * kIterations);
  // The writer's confirmations all landed.
  bool found = false;
  for (const core::ScoredCode& scored :
       service.FullListForPart(corpus_.bundles[0].part_id)) {
    if (scored.error_code == "E_CONC") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RecommendationServiceTest, DescribeUnknownCode) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  EXPECT_TRUE(service.DescribeCode("E_MISSING").status().IsKeyError());
}

TEST_F(RecommendationServiceTest, ForeignTextClassification) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  datagen::NhtsaConfig config;
  config.num_complaints = 60;
  datagen::NhtsaComplaintGenerator generator(&world_, config);
  size_t non_empty = 0;
  for (const datagen::NhtsaComplaint& complaint : generator.Generate()) {
    auto recommendation =
        service.RecommendForText(complaint.part_id, complaint.narrative);
    ASSERT_TRUE(recommendation.ok());
    if (!recommendation->top.empty()) ++non_empty;
  }
  EXPECT_GT(non_empty, 45u)
      << "the concept model must transfer to the foreign text type";
}

TEST_F(RecommendationServiceTest, ConfirmAssignmentLearnsOnline) {
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  size_t nodes_before = service.knowledge().num_nodes();
  size_t instances_before = service.knowledge().num_instances();

  kb::DataBundle novel;
  novel.reference_number = "NEW1";
  novel.part_id = corpus_.bundles[0].part_id;
  novel.mechanic_report = "entirely new failure pattern";
  novel.supplier_report = "previously unseen root cause";
  ASSERT_TRUE(service.ConfirmAssignment(novel, "E_FRESH").ok());
  EXPECT_EQ(service.knowledge().num_instances(), instances_before + 1);
  EXPECT_GE(service.knowledge().num_nodes(), nodes_before);
  // The confirmed code now appears in the part's full list.
  bool found = false;
  for (const auto& scored : service.FullListForPart(novel.part_id)) {
    if (scored.error_code == "E_FRESH") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RecommendationServiceTest, ConfirmAssignmentValidates) {
  RecommendationService untrained(&world_.taxonomy(), {});
  kb::DataBundle bundle;
  EXPECT_TRUE(untrained.ConfirmAssignment(bundle, "E1").IsInvalid());
  RecommendationService service(&world_.taxonomy(), {});
  ASSERT_TRUE(service.Train(corpus_).ok());
  EXPECT_TRUE(service.ConfirmAssignment(bundle, "").IsInvalid());
}

TEST_F(RecommendationServiceTest, FailedTrainLeavesServiceUntouched) {
  // A fault halfway through the corpus aborts training; because the model
  // is built aside and swapped only on success, the service must come out
  // exactly as it went in: untrained, refusing to serve, and trainable.
  FaultInjector fault;
  fault.AddFault({"train.bundle",
                  static_cast<uint32_t>(corpus_.bundles.size() / 2),
                  FaultKind::kPermanent, 0.0});
  RecommendationService::Options options;
  options.fault = &fault;
  RecommendationService service(&world_.taxonomy(), options);
  Status st = service.Train(corpus_);
  ASSERT_TRUE(st.IsIOError()) << st;
  EXPECT_FALSE(service.trained());
  EXPECT_TRUE(service.Recommend(corpus_.bundles[0]).status().IsInvalid());
  EXPECT_TRUE(service.FullListForPart(corpus_.bundles[0].part_id).empty());
  // The injected fault was one-shot; the retry trains from scratch with no
  // leftovers from the aborted pass.
  ASSERT_TRUE(service.Train(corpus_).ok());
  EXPECT_TRUE(service.trained());
  EXPECT_TRUE(service.Recommend(corpus_.bundles[0]).ok());
}

TEST_F(RecommendationServiceTest, FailedRetrainKeepsServing) {
  FaultInjector fault;
  RecommendationService::Options options;
  options.fault = &fault;
  RecommendationService service(&world_.taxonomy(), options);
  ASSERT_TRUE(service.Train(corpus_).ok());
  // Train-once contract is unchanged; Retrain is the explicit swap path.
  EXPECT_TRUE(service.Train(corpus_).IsInvalid());

  fault.AddFault({"train.bundle", 3, FaultKind::kPermanent, 0.0});
  Status st = service.Retrain(corpus_);
  ASSERT_TRUE(st.IsIOError()) << st;
  // The old model is still live and serving.
  EXPECT_TRUE(service.trained());
  auto recommendation = service.Recommend(corpus_.bundles[0]);
  ASSERT_TRUE(recommendation.ok()) << recommendation.status();
  EXPECT_FALSE(recommendation->top.empty());
  // A clean Retrain succeeds and keeps serving.
  ASSERT_TRUE(service.Retrain(corpus_).ok());
  EXPECT_TRUE(service.Recommend(corpus_.bundles[0]).ok());
}

// ---------------------------------------------------------------------------
// Distribution comparison (Fig. 14)
// ---------------------------------------------------------------------------

TEST(DistributionTest, TopNPlusOther) {
  std::map<std::string, size_t> counts = {
      {"X2", 47}, {"B15", 19}, {"CR2", 18}, {"D1", 10}, {"D2", 6}};
  Distribution dist = Distribution::FromCounts("OEM", counts, 3);
  ASSERT_EQ(dist.entries.size(), 4u);
  EXPECT_EQ(dist.entries[0].error_code, "X2");
  EXPECT_DOUBLE_EQ(dist.entries[0].fraction, 0.47);
  EXPECT_EQ(dist.entries[1].error_code, "B15");
  EXPECT_EQ(dist.entries[2].error_code, "CR2");
  EXPECT_EQ(dist.entries[3].error_code, "Other");
  EXPECT_EQ(dist.entries[3].count, 16u);
  EXPECT_EQ(dist.total, 100u);
}

TEST(DistributionTest, FewerCodesThanTopN) {
  std::map<std::string, size_t> counts = {{"A", 5}, {"B", 5}};
  Distribution dist = Distribution::FromCounts("src", counts, 3);
  ASSERT_EQ(dist.entries.size(), 2u) << "no Other bucket when all shown";
}

TEST(DistributionTest, EmptyCounts) {
  Distribution dist = Distribution::FromCounts("src", {}, 3);
  EXPECT_TRUE(dist.entries.empty());
  EXPECT_EQ(dist.total, 0u);
}

TEST(ComparisonScreenTest, RenderContainsBothSources) {
  ComparisonScreen screen;
  screen.left = Distribution::FromCounts("Proprietary", {{"X2", 9}, {"B", 1}},
                                         3);
  screen.right = Distribution::FromCounts("NHTSA", {{"X2", 4}, {"C", 6}}, 3);
  std::string rendered = screen.Render();
  EXPECT_NE(rendered.find("Proprietary"), std::string::npos);
  EXPECT_NE(rendered.find("NHTSA"), std::string::npos);
  EXPECT_NE(rendered.find("X2"), std::string::npos);
  EXPECT_NE(rendered.find("%"), std::string::npos);
}

TEST(ComparisonScreenTest, OverlapScore) {
  ComparisonScreen screen;
  screen.left = Distribution::FromCounts("L", {{"A", 50}, {"B", 50}}, 5);
  screen.right = Distribution::FromCounts("R", {{"A", 50}, {"C", 50}}, 5);
  EXPECT_DOUBLE_EQ(screen.OverlapScore(), 0.5);

  ComparisonScreen identical;
  identical.left = Distribution::FromCounts("L", {{"A", 7}, {"B", 3}}, 5);
  identical.right = Distribution::FromCounts("R", {{"A", 7}, {"B", 3}}, 5);
  EXPECT_DOUBLE_EQ(identical.OverlapScore(), 1.0);

  ComparisonScreen disjoint;
  disjoint.left = Distribution::FromCounts("L", {{"A", 1}}, 5);
  disjoint.right = Distribution::FromCounts("R", {{"B", 1}}, 5);
  EXPECT_DOUBLE_EQ(disjoint.OverlapScore(), 0.0);
}

}  // namespace
}  // namespace qatk::quest
