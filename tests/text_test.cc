#include <gtest/gtest.h>

#include "text/language.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace qatk::text {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, SplitsOnWhitespace) {
  Tokenizer t;
  auto tokens = t.Tokenize("radio turns off");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "radio");
  EXPECT_EQ(tokens[1].text, "turns");
  EXPECT_EQ(tokens[2].text, "off");
  for (const Token& token : tokens) {
    EXPECT_EQ(token.kind, TokenKind::kWord);
  }
}

TEST(TokenizerTest, PunctuationBecomesSeparateTokens) {
  Tokenizer t;
  auto tokens = t.Tokenize("defekt, durchgeschmort.");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "defekt");
  EXPECT_EQ(tokens[1].text, ",");
  EXPECT_EQ(tokens[1].kind, TokenKind::kPunctuation);
  EXPECT_EQ(tokens[2].text, "durchgeschmort");
  EXPECT_EQ(tokens[3].text, ".");
}

TEST(TokenizerTest, OffsetsAreByteAccurate) {
  Tokenizer t;
  std::string input = "ab  cd.";
  auto tokens = t.Tokenize(input);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].begin, 0u);
  EXPECT_EQ(tokens[0].end, 2u);
  EXPECT_EQ(tokens[1].begin, 4u);
  EXPECT_EQ(tokens[1].end, 6u);
  EXPECT_EQ(tokens[2].begin, 6u);
  EXPECT_EQ(tokens[2].end, 7u);
  for (const Token& token : tokens) {
    EXPECT_EQ(input.substr(token.begin, token.end - token.begin), token.text);
  }
}

TEST(TokenizerTest, HyphenatedCompoundsSplit) {
  Tokenizer t;
  auto tokens = t.Tokenize("Bremsen-Schlauch");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "Bremsen");
  EXPECT_EQ(tokens[1].text, "-");
  EXPECT_EQ(tokens[2].text, "Schlauch");
}

TEST(TokenizerTest, UmlautsStayInsideWords) {
  Tokenizer t;
  auto tokens = t.Tokenize("Lüfter defekt");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "Lüfter");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  \t\n ").empty());
}

TEST(TokenizerTest, DigitsAreWordCharacters) {
  Tokenizer t;
  auto tokens = t.Tokenize("id test470 ok");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "test470");
}

TEST(TokenizerTest, WordsNormalizedFoldsAndSkipsPunct) {
  Tokenizer t;
  auto words = t.WordsNormalized("Lüfter funktioniert NICHT!");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "luefter");
  EXPECT_EQ(words[1], "funktioniert");
  EXPECT_EQ(words[2], "nicht");
}

// Property: concatenating covered spans reconstructs all non-space bytes.
class TokenizerRoundTripTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(TokenizerRoundTripTest, SpansCoverAllNonSpaceBytes) {
  Tokenizer t;
  const std::string& input = GetParam();
  std::string reconstructed;
  for (const Token& token : t.Tokenize(input)) {
    reconstructed += input.substr(token.begin, token.end - token.begin);
  }
  std::string expected;
  for (char c : input) {
    if (!std::isspace(static_cast<unsigned char>(c))) expected += c;
  }
  EXPECT_EQ(reconstructed, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Samples, TokenizerRoundTripTest,
    ::testing::Values(
        "", "a", "...", "kleint says taht radio turns on",
        "Lüfter funktioniert nicht. Kontakt defekt, durchgeschmort!",
        "id test470, no clear results; sending on to supplier.",
        "x-y-z 1.2.3 (foo)  [bar]"));

// ---------------------------------------------------------------------------
// Language detection
// ---------------------------------------------------------------------------

TEST(LanguageDetectorTest, DetectsGerman) {
  LanguageDetector detector;
  EXPECT_EQ(detector.Detect(
                "Der Lüfter funktioniert nicht mehr und das Steuergerät "
                "wurde getauscht weil die Leitung defekt war"),
            Language::kGerman);
}

TEST(LanguageDetectorTest, DetectsEnglish) {
  LanguageDetector detector;
  EXPECT_EQ(detector.Detect(
                "The customer states that the radio turns on and off by "
                "itself with a crackling sound"),
            Language::kEnglish);
}

TEST(LanguageDetectorTest, ShortInputIsUnknown) {
  LanguageDetector detector;
  EXPECT_EQ(detector.Detect(""), Language::kUnknown);
  EXPECT_EQ(detector.Detect("ok"), Language::kUnknown);
}

TEST(LanguageDetectorTest, MessyGermanStillDetected) {
  LanguageDetector detector;
  // Spelling errors and folded umlauts, as in the real reports.
  EXPECT_EQ(detector.Detect(
                "Luefter funktionirt nicht kontakt defekt durchgeschmort "
                "bitte pruefen ob dichtung undicht"),
            Language::kGerman);
}

TEST(LanguageDetectorTest, ScoresAreFiniteAndOrdered) {
  LanguageDetector detector;
  auto scores = detector.Score("the quick brown fox jumps over the fence");
  EXPECT_LT(scores.english, scores.german);
  auto scores_de = detector.Score(
      "die schnelle braune katze springt ueber den zaun");
  EXPECT_LT(scores_de.german, scores_de.english);
}

TEST(LanguageDetectorTest, NumericGibberishIsUnknown) {
  LanguageDetector detector;
  EXPECT_EQ(detector.Detect("4711 0815 9999 123456 77"), Language::kUnknown);
}

TEST(LanguageDetectorTest, CustomProfilesOverrideSeeds) {
  // Train on swapped corpora: the detector must follow the training data,
  // not the embedded seeds.
  LanguageDetector swapped(
      "the quick brown fox jumps over the lazy dog again and again",
      "der schnelle braune fuchs springt immer wieder ueber den hund");
  EXPECT_EQ(swapped.Detect("the quick brown fox jumps over the dog"),
            Language::kGerman)
      << "with swapped training corpora, English text scores as 'german'";
}

TEST(LanguageToStringTest, Codes) {
  EXPECT_STREQ(LanguageToString(Language::kGerman), "de");
  EXPECT_STREQ(LanguageToString(Language::kEnglish), "en");
  EXPECT_STREQ(LanguageToString(Language::kUnknown), "unknown");
}

// ---------------------------------------------------------------------------
// Stopwords
// ---------------------------------------------------------------------------

TEST(StopwordFilterTest, GermanArticlesAndPronouns) {
  StopwordFilter filter;
  EXPECT_TRUE(filter.IsStopword("der"));
  EXPECT_TRUE(filter.IsStopword("die"));
  EXPECT_TRUE(filter.IsStopword("das"));
  EXPECT_TRUE(filter.IsStopword("ich"));
  EXPECT_TRUE(filter.IsStopword("es"));
}

TEST(StopwordFilterTest, EnglishArticlesAndPronouns) {
  StopwordFilter filter;
  EXPECT_TRUE(filter.IsStopword("the"));
  EXPECT_TRUE(filter.IsStopword("a"));
  EXPECT_TRUE(filter.IsStopword("it"));
  EXPECT_TRUE(filter.IsStopword("they"));
}

TEST(StopwordFilterTest, ContentWordsPass) {
  StopwordFilter filter;
  EXPECT_FALSE(filter.IsStopword("luefter"));
  EXPECT_FALSE(filter.IsStopword("brake"));
  EXPECT_FALSE(filter.IsStopword("defekt"));
  EXPECT_FALSE(filter.IsStopword("radio"));
}

TEST(StopwordFilterTest, FoldedFormsMatch) {
  StopwordFilter filter;
  // "für" folds to "fuer", "über" to "ueber".
  EXPECT_TRUE(filter.IsStopword("fuer"));
  EXPECT_TRUE(filter.IsStopword("ueber"));
}

TEST(StopwordFilterTest, HasBothLanguages) {
  StopwordFilter filter;
  EXPECT_GT(filter.size(), 80u);
}

}  // namespace
}  // namespace qatk::text
