#include <gtest/gtest.h>

#include "cas/annotators.h"
#include "taxonomy/concept_annotator.h"
#include "taxonomy/extender.h"
#include "taxonomy/taxonomy.h"

namespace qatk::tax {
namespace {

using text::Language;

Taxonomy BaseTaxonomy() {
  Taxonomy taxonomy;
  Concept root;
  root.id = 2;
  root.category = Category::kSymptom;
  root.label = "Symptom";
  QATK_CHECK_OK(taxonomy.Add(std::move(root)));
  Concept fan;
  fan.id = 101;
  fan.category = Category::kComponent;
  fan.label = "Fan";
  fan.parent_id = 2;
  fan.synonyms[Language::kEnglish] = {"fan"};
  fan.synonyms[Language::kGerman] = {"Lüfter"};
  QATK_CHECK_OK(taxonomy.Add(std::move(fan)));
  return taxonomy;
}

TaxonomyExtender::Options FastOptions() {
  TaxonomyExtender::Options options;
  options.min_frequency = 3;
  options.min_concentration = 0.6;
  return options;
}

TEST(TaxonomyExtenderTest, MinesConcentratedUnknownTokens) {
  Taxonomy taxonomy = BaseTaxonomy();
  TaxonomyExtender extender(taxonomy, FastOptions());
  // "durchgeschmort" concentrates on E1 -> proposal.
  for (int i = 0; i < 5; ++i) {
    extender.AddDocument("fan kontakt durchgeschmort", "E1");
  }
  // "geprueft" spreads over many codes -> filler, no proposal.
  for (int i = 0; i < 5; ++i) {
    extender.AddDocument("teil geprueft", "E" + std::to_string(i));
  }
  auto proposals = extender.Propose();
  ASSERT_FALSE(proposals.empty());
  bool has_schmort = false;
  for (const SynonymProposal& proposal : proposals) {
    EXPECT_NE(proposal.surface, "geprueft")
        << "evenly spread filler must not be proposed";
    EXPECT_NE(proposal.surface, "fan") << "known tokens must not be proposed";
    if (proposal.surface == "durchgeschmort") {
      has_schmort = true;
      EXPECT_EQ(proposal.frequency, 5u);
      EXPECT_DOUBLE_EQ(proposal.concentration, 1.0);
      ASSERT_FALSE(proposal.top_codes.empty());
      EXPECT_EQ(proposal.top_codes[0], "E1");
    }
  }
  EXPECT_TRUE(has_schmort);
}

TEST(TaxonomyExtenderTest, KnownTokensIncludeAllSynonymLanguages) {
  Taxonomy taxonomy = BaseTaxonomy();
  TaxonomyExtender extender(taxonomy, FastOptions());
  for (int i = 0; i < 5; ++i) {
    // "luefter" is the folded form of the German synonym -> known.
    extender.AddDocument("Lüfter luefter LUEFTER", "E1");
  }
  EXPECT_TRUE(extender.Propose().empty());
}

TEST(TaxonomyExtenderTest, FrequencyAndLengthThresholds) {
  Taxonomy taxonomy = BaseTaxonomy();
  TaxonomyExtender extender(taxonomy, FastOptions());
  extender.AddDocument("seldomword", "E1");  // Frequency 1 < 3.
  for (int i = 0; i < 10; ++i) {
    extender.AddDocument("abc 4711 12345", "E1");  // Short + numeric.
  }
  EXPECT_TRUE(extender.Propose().empty());
}

TEST(TaxonomyExtenderTest, StopwordsNeverProposed) {
  Taxonomy taxonomy = BaseTaxonomy();
  TaxonomyExtender extender(taxonomy, FastOptions());
  for (int i = 0; i < 10; ++i) {
    extender.AddDocument("nicht fuer ueber durchgebrannt", "E1");
  }
  for (const SynonymProposal& proposal : extender.Propose()) {
    EXPECT_EQ(proposal.surface, "durchgebrannt");
  }
}

TEST(TaxonomyExtenderTest, ProposalsRankedByConcentrationThenFrequency) {
  Taxonomy taxonomy = BaseTaxonomy();
  TaxonomyExtender extender(taxonomy, FastOptions());
  for (int i = 0; i < 8; ++i) extender.AddDocument("pureterm", "E1");
  for (int i = 0; i < 6; ++i) extender.AddDocument("mixedterm", "E1");
  for (int i = 0; i < 4; ++i) extender.AddDocument("mixedterm", "E2");
  auto proposals = extender.Propose();
  ASSERT_EQ(proposals.size(), 2u);
  EXPECT_EQ(proposals[0].surface, "pureterm");
  EXPECT_EQ(proposals[1].surface, "mixedterm");
  EXPECT_DOUBLE_EQ(proposals[1].concentration, 0.6);
}

TEST(TaxonomyExtenderTest, ApplyAddsMatchableConcepts) {
  Taxonomy taxonomy = BaseTaxonomy();
  TaxonomyExtender extender(taxonomy, FastOptions());
  for (int i = 0; i < 5; ++i) {
    extender.AddDocument("fan durchgeschmort", "E1");
  }
  auto proposals = extender.Propose();
  ASSERT_FALSE(proposals.empty());
  size_t before = taxonomy.size();
  auto added = extender.Apply(proposals, &taxonomy, 50000, 2);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, proposals.size());
  EXPECT_EQ(taxonomy.size(), before + *added);
  // The new concept is annotatable.
  TrieConceptAnnotator annotator(taxonomy);
  cas::Cas c("kontakt durchgeschmort");
  cas::TokenizerAnnotator tokenizer;
  QATK_CHECK_OK(tokenizer.Process(&c));
  QATK_CHECK_OK(annotator.Process(&c));
  EXPECT_EQ(c.CountType(cas::types::kConcept), 1u);
}

TEST(TaxonomyExtenderTest, ApplySkipsOccupiedIds) {
  Taxonomy taxonomy = BaseTaxonomy();
  TaxonomyExtender extender(taxonomy, FastOptions());
  for (int i = 0; i < 5; ++i) extender.AddDocument("durchgeschmort", "E1");
  auto proposals = extender.Propose();
  // id 101 is taken; Apply must skip to a free id.
  auto added = extender.Apply(proposals, &taxonomy, 101, 2);
  ASSERT_TRUE(added.ok()) << added.status();
  EXPECT_TRUE(taxonomy.Contains(102));
}

}  // namespace
}  // namespace qatk::tax
