// Tests for the observability subsystem: log-linear bucket math, exact
// snapshot merge, quantiles against a sorted-vector reference, registry
// semantics, and a writers-vs-reader stress that TSan must pass clean.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace qatk::obs {
namespace {

#ifdef QATK_NO_METRICS
#define QATK_SKIP_IF_NO_METRICS() \
  GTEST_SKIP() << "metrics compiled out (QATK_NO_METRICS)"
#else
#define QATK_SKIP_IF_NO_METRICS() (void)0
#endif

/// Deterministic 64-bit generator (splitmix64) so every run sees the same
/// value stream without seeding std::mt19937 from the clock.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// ---------------------------------------------------------------------------
// Bucket math.
// ---------------------------------------------------------------------------

TEST(BucketMath, LowerBoundsAreBucketBoundaries) {
  // The lower bound of every bucket must map back into that bucket, and
  // the value one below the next lower bound must still be in it: the
  // boundaries are exact, not off by one.
  for (int i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(BucketIndex(BucketLowerBound(i)), i) << "bucket " << i;
    if (i + 1 < kHistogramBuckets) {
      EXPECT_EQ(BucketIndex(BucketLowerBound(i + 1) - 1), i)
          << "upper edge of bucket " << i;
    }
  }
}

TEST(BucketMath, LowerBoundsStrictlyIncrease) {
  for (int i = 1; i < kHistogramBuckets; ++i) {
    EXPECT_LT(BucketLowerBound(i - 1), BucketLowerBound(i)) << i;
  }
}

TEST(BucketMath, EveryValueLandsInsideItsBucket) {
  // Exhaustive near the bottom, sampled (every boundary +/- 1) above.
  for (uint64_t v = 0; v < (1u << 16); ++v) {
    const int i = BucketIndex(v);
    ASSERT_GE(v, BucketLowerBound(i)) << v;
    if (i + 1 < kHistogramBuckets) {
      ASSERT_LT(v, BucketLowerBound(i + 1)) << v;
    }
  }
  for (int i = 0; i < kHistogramBuckets; ++i) {
    for (int64_t delta : {-1, 0, 1}) {
      const int64_t v = static_cast<int64_t>(BucketLowerBound(i)) + delta;
      if (v < 0) continue;
      const int b = BucketIndex(static_cast<uint64_t>(v));
      ASSERT_GE(static_cast<uint64_t>(v), BucketLowerBound(b));
      if (b + 1 < kHistogramBuckets) {
        ASSERT_LT(static_cast<uint64_t>(v), BucketLowerBound(b + 1));
      }
    }
  }
}

TEST(BucketMath, RelativeErrorAtMostQuarter) {
  // Sub-bucketed octaves: bucket width / lower bound <= 25% (exactly 25%
  // at each octave start), the accuracy claim the serving dashboards rely
  // on.
  for (int i = 4; i + 1 < kHistogramBuckets; ++i) {
    const double lower = static_cast<double>(BucketLowerBound(i));
    const double width =
        static_cast<double>(BucketLowerBound(i + 1)) - lower;
    EXPECT_LE(width / lower, 0.25) << "bucket " << i;
  }
}

TEST(BucketMath, OverflowBucketCatchesEverythingAbove) {
  EXPECT_EQ(BucketIndex(kHistogramOverflow), kHistogramBuckets - 1);
  EXPECT_EQ(BucketIndex(kHistogramOverflow * 1000), kHistogramBuckets - 1);
  EXPECT_EQ(BucketIndex(~uint64_t{0}), kHistogramBuckets - 1);
}

// ---------------------------------------------------------------------------
// Snapshot merge.
// ---------------------------------------------------------------------------

HistogramSnapshot RandomSnapshot(SplitMix64* rng) {
  HistogramSnapshot s;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    s.counts[i] = rng->Next() % 1000;
    s.total += s.counts[i];
    s.sum += s.counts[i] * BucketLowerBound(i);
  }
  return s;
}

TEST(HistogramSnapshotTest, MergeIsAssociativeAndCommutative) {
  SplitMix64 rng(7);
  for (int round = 0; round < 16; ++round) {
    const HistogramSnapshot a = RandomSnapshot(&rng);
    const HistogramSnapshot b = RandomSnapshot(&rng);
    const HistogramSnapshot c = RandomSnapshot(&rng);
    HistogramSnapshot ab_c = a;  // (a + b) + c
    ab_c.Merge(b);
    ab_c.Merge(c);
    HistogramSnapshot bc = b;  // a + (b + c)
    bc.Merge(c);
    HistogramSnapshot a_bc = a;
    a_bc.Merge(bc);
    HistogramSnapshot ba = b;  // b + a
    ba.Merge(a);
    ba.Merge(c);
    EXPECT_EQ(ab_c.counts, a_bc.counts);
    EXPECT_EQ(ab_c.total, a_bc.total);
    EXPECT_EQ(ab_c.sum, a_bc.sum);
    EXPECT_EQ(ab_c.counts, ba.counts);
    EXPECT_EQ(ab_c.total, ba.total);
    EXPECT_EQ(ab_c.sum, ba.sum);
  }
}

TEST(HistogramSnapshotTest, MergeWithEmptyIsIdentity) {
  SplitMix64 rng(11);
  const HistogramSnapshot a = RandomSnapshot(&rng);
  HistogramSnapshot merged = a;
  merged.Merge(HistogramSnapshot{});
  EXPECT_EQ(merged.counts, a.counts);
  EXPECT_EQ(merged.total, a.total);
  EXPECT_EQ(merged.sum, a.sum);
}

// ---------------------------------------------------------------------------
// Quantiles against a sorted-vector reference.
// ---------------------------------------------------------------------------

TEST(HistogramSnapshotTest, QuantileMatchesSortedReference) {
  QATK_SKIP_IF_NO_METRICS();
  // Values spread across the whole dynamic range (including 0 and
  // overflow); the histogram quantile must land on exactly the lower
  // bound of the bucket holding the reference element — i.e. within one
  // bucket width below the true value, never above it.
  SplitMix64 rng(23);
  Histogram histogram;
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const int magnitude = static_cast<int>(rng.Next() % 26);  // up to 2^25
    const uint64_t v = rng.Next() & ((1ull << magnitude) - 1);
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.total, values.size());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(values.size()));
    if (rank >= values.size()) rank = values.size() - 1;
    const uint64_t reference = values[rank];
    const uint64_t estimate = snapshot.Quantile(q);
    EXPECT_EQ(estimate, BucketLowerBound(BucketIndex(reference)))
        << "q=" << q << " reference=" << reference;
    EXPECT_LE(estimate, reference) << "q=" << q;
  }
}

TEST(HistogramSnapshotTest, QuantileOfEmptyIsZero) {
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.5), 0u);
}

TEST(HistogramSnapshotTest, SumTracksRecordedValues) {
  QATK_SKIP_IF_NO_METRICS();
  Histogram histogram;
  uint64_t expected = 0;
  SplitMix64 rng(31);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() % 100000;
    histogram.Record(v);
    expected += v;
  }
  EXPECT_EQ(histogram.Snapshot().sum, expected);
}

// ---------------------------------------------------------------------------
// Counter / gauge / registry.
// ---------------------------------------------------------------------------

TEST(CounterTest, SumsAcrossThreads) {
  QATK_SKIP_IF_NO_METRICS();
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  QATK_SKIP_IF_NO_METRICS();
  Gauge gauge;
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
}

TEST(RegistryTest, GetIsCreateOrGetWithStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("test_counter");
  Counter* b = registry.GetCounter("test_counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(static_cast<void*>(registry.GetHistogram("test_counter")),
            static_cast<void*>(a));  // Separate namespaces per kind.
}

TEST(RegistryTest, SnapshotIsNameSortedAndComplete) {
  QATK_SKIP_IF_NO_METRICS();
  Registry registry;
  registry.GetCounter("b_counter")->Add(2);
  registry.GetCounter("a_counter")->Add(1);
  registry.GetGauge("g")->Set(-5);
  registry.GetHistogram("h")->Record(100);
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a_counter");
  EXPECT_EQ(snapshot.counters[0].second, 1u);
  EXPECT_EQ(snapshot.counters[1].first, "b_counter");
  EXPECT_EQ(snapshot.counters[1].second, 2u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, -5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.total, 1u);
}

TEST(ScopedTimerTest, RecordsOneSampleOnDestruction) {
  QATK_SKIP_IF_NO_METRICS();
  Histogram histogram;
  { ScopedTimer timer(&histogram); }
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total, 1u);
}

TEST(SampledTimerTest, RecordsExactlyOneInPeriodPerThread) {
  QATK_SKIP_IF_NO_METRICS();
  // The per-thread tick starts fresh on a new thread, so running the
  // loop there makes the expected count exact regardless of what other
  // tests did on this thread.
  Histogram histogram;
  constexpr uint64_t kSpans = SampledTimer::kPeriod * 17;
  std::thread([&histogram] {
    for (uint64_t i = 0; i < kSpans; ++i) {
      SampledTimer timer(&histogram);
    }
  }).join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total, kSpans / SampledTimer::kPeriod);
}

// ---------------------------------------------------------------------------
// Writers-vs-reader stress (the TSan target).
// ---------------------------------------------------------------------------

TEST(StressTest, EightWritersOneReader) {
  QATK_SKIP_IF_NO_METRICS();
  // 8 writers hammer one histogram and one counter while a reader
  // snapshots concurrently. Every snapshot must be internally coherent
  // (total == sum of bucket counts — Snapshot computes total from the
  // counts it read, so this checks the reader never sees torn per-bucket
  // state) and totals must be monotonically non-decreasing across
  // snapshots. After the join, totals are exact.
  Histogram histogram;
  Counter counter;
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    uint64_t last_total = 0;
    uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const HistogramSnapshot snapshot = histogram.Snapshot();
      uint64_t bucket_sum = 0;
      for (uint64_t c : snapshot.counts) bucket_sum += c;
      ASSERT_EQ(snapshot.total, bucket_sum);
      ASSERT_GE(snapshot.total, last_total);
      last_total = snapshot.total;
      const uint64_t count = counter.Value();
      ASSERT_GE(count, last_count);
      last_count = count;
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      SplitMix64 rng(static_cast<uint64_t>(w) + 1);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        histogram.Record(rng.Next() % (1u << 20));
        counter.Add();
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(histogram.Snapshot().total, kWriters * kPerWriter);
  EXPECT_EQ(counter.Value(), kWriters * kPerWriter);
}

TEST(StressTest, ConcurrentRegistryLookups) {
  // Create-or-get raced from many threads must converge on one instance
  // per name and never crash; the returned pointers must agree.
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        Counter* c = registry.GetCounter("raced_counter");
        registry.GetHistogram("raced_hist")->Record(1);
        registry.GetGauge("raced_gauge")->Set(i);
        seen[t] = c;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace qatk::obs
