#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_table.h"

namespace qatk::db {
namespace {

class HeapTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<InMemoryDiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 64);
    auto first = HeapTable::Create(pool_.get());
    ASSERT_TRUE(first.ok());
    table_ = std::make_unique<HeapTable>(pool_.get(), *first);
  }

  std::unique_ptr<InMemoryDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapTable> table_;
};

TEST_F(HeapTableTest, InsertAndGet) {
  auto rid = table_->Insert("hello world");
  ASSERT_TRUE(rid.ok());
  auto value = table_->Get(*rid);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "hello world");
}

TEST_F(HeapTableTest, EmptyRecord) {
  auto rid = table_->Insert("");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*table_->Get(*rid), "");
}

TEST_F(HeapTableTest, ManyRecordsSpanPages) {
  std::map<int, Rid> rids;
  for (int i = 0; i < 2000; ++i) {
    std::string record = "record-" + std::to_string(i) +
                         std::string(i % 50, 'x');
    auto rid = table_->Insert(record);
    ASSERT_TRUE(rid.ok()) << rid.status();
    rids[i] = *rid;
  }
  // Spot-check retrieval.
  for (int i = 0; i < 2000; i += 97) {
    std::string expected = "record-" + std::to_string(i) +
                           std::string(i % 50, 'x');
    EXPECT_EQ(*table_->Get(rids[i]), expected);
  }
  EXPECT_GT(disk_->num_pages(), 5u) << "records should span multiple pages";
}

TEST_F(HeapTableTest, DeleteThenGetFails) {
  Rid rid = *table_->Insert("doomed");
  ASSERT_TRUE(table_->Delete(rid).ok());
  EXPECT_TRUE(table_->Get(rid).status().IsKeyError());
}

TEST_F(HeapTableTest, DoubleDeleteFails) {
  Rid rid = *table_->Insert("x");
  ASSERT_TRUE(table_->Delete(rid).ok());
  EXPECT_FALSE(table_->Delete(rid).ok());
}

TEST_F(HeapTableTest, DeletedSlotIdIsReused) {
  Rid a = *table_->Insert("aaaa");
  ASSERT_TRUE(table_->Delete(a).ok());
  Rid b = *table_->Insert("bbbb");
  EXPECT_EQ(a.page_id, b.page_id);
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(*table_->Get(b), "bbbb");
}

TEST_F(HeapTableTest, UpdateInPlaceWhenSmaller) {
  Rid rid = *table_->Insert("long original record");
  auto new_rid = table_->Update(rid, "short");
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(*new_rid, rid);
  EXPECT_EQ(*table_->Get(rid), "short");
}

TEST_F(HeapTableTest, UpdateGrowingMayMove) {
  Rid rid = *table_->Insert("tiny");
  std::string big(200, 'z');
  auto new_rid = table_->Update(rid, big);
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(*table_->Get(*new_rid), big);
}

TEST_F(HeapTableTest, OverflowRecordRoundTrip) {
  // Larger than one page: exercises the overflow chain.
  std::string big;
  for (int i = 0; i < 3000; ++i) big += "chunk" + std::to_string(i) + "|";
  ASSERT_GT(big.size(), 2 * kPageSize);
  auto rid = table_->Insert(big);
  ASSERT_TRUE(rid.ok()) << rid.status();
  auto value = table_->Get(*rid);
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(*value, big);
}

TEST_F(HeapTableTest, OverflowBoundaryExactPageMultiple) {
  // Record sizes straddling the inline limit.
  for (size_t size : {kMaxInlineRecord - 1, kMaxInlineRecord,
                      kMaxInlineRecord + 1, kPageSize, 2 * kPageSize}) {
    std::string record(size, 'q');
    auto rid = table_->Insert(record);
    ASSERT_TRUE(rid.ok()) << "size " << size << ": " << rid.status();
    EXPECT_EQ(table_->Get(*rid)->size(), size);
  }
}

TEST_F(HeapTableTest, ScanVisitsAllLiveRecords) {
  std::set<std::string> expected;
  for (int i = 0; i < 500; ++i) {
    std::string r = "rec" + std::to_string(i);
    table_->Insert(r).ValueOrDie();
    expected.insert(r);
  }
  // Delete some.
  HeapTable::Iterator it = table_->Scan();
  Rid rid;
  std::string record;
  std::vector<Rid> to_delete;
  int idx = 0;
  while (it.Next(&rid, &record)) {
    if (idx++ % 3 == 0) {
      to_delete.push_back(rid);
      expected.erase(record);
    }
  }
  ASSERT_TRUE(it.status().ok());
  for (const Rid& r : to_delete) ASSERT_TRUE(table_->Delete(r).ok());

  std::set<std::string> seen;
  HeapTable::Iterator it2 = table_->Scan();
  while (it2.Next(&rid, &record)) seen.insert(record);
  ASSERT_TRUE(it2.status().ok());
  EXPECT_EQ(seen, expected);
}

TEST_F(HeapTableTest, ScanEmptyTable) {
  HeapTable::Iterator it = table_->Scan();
  Rid rid;
  std::string record;
  EXPECT_FALSE(it.Next(&rid, &record));
  EXPECT_TRUE(it.status().ok());
}

// Randomized property: interleaved inserts/deletes/updates mirror a std::map.
TEST_F(HeapTableTest, RandomizedMirrorsReferenceModel) {
  Rng rng(12345);
  std::map<std::string, Rid> live;  // payload -> rid
  int next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.6 || live.empty()) {
      size_t len = rng.NextBounded(300);
      std::string payload =
          "p" + std::to_string(next_id++) + "-" + std::string(len, 'a');
      Rid rid = *table_->Insert(payload);
      live[payload] = rid;
    } else if (dice < 0.85) {
      auto it = live.begin();
      std::advance(it, rng.NextBounded(live.size()));
      ASSERT_TRUE(table_->Delete(it->second).ok());
      live.erase(it);
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBounded(live.size()));
      std::string new_payload = "u" + std::to_string(next_id++);
      Rid new_rid = *table_->Update(it->second, new_payload);
      live.erase(it);
      live[new_payload] = new_rid;
    }
  }
  // Verify all live payloads retrievable and scan matches.
  std::set<std::string> expected;
  for (const auto& [payload, rid] : live) {
    EXPECT_EQ(*table_->Get(rid), payload);
    expected.insert(payload);
  }
  std::set<std::string> seen;
  HeapTable::Iterator it = table_->Scan();
  Rid rid;
  std::string record;
  while (it.Next(&rid, &record)) seen.insert(record);
  ASSERT_TRUE(it.status().ok());
  EXPECT_EQ(seen, expected);
}

TEST(BufferPoolTest, EvictionKeepsDataIntact) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 4);  // Tiny pool forces eviction.
  auto first = HeapTable::Create(&pool);
  ASSERT_TRUE(first.ok());
  HeapTable table(&pool, *first);
  std::vector<Rid> rids;
  for (int i = 0; i < 400; ++i) {
    std::string record(100, static_cast<char>('a' + i % 26));
    rids.push_back(*table.Insert(record));
  }
  EXPECT_GT(pool.eviction_count(), 0u);
  for (int i = 0; i < 400; i += 37) {
    std::string expected(100, static_cast<char>('a' + i % 26));
    EXPECT_EQ(*table.Get(rids[i]), expected);
  }
}

TEST(BufferPoolTest, AllPinnedFails) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);
  Page* a = *pool.NewPage();
  Page* b = *pool.NewPage();
  auto c = pool.NewPage();
  EXPECT_TRUE(c.status().IsOutOfRange());
  ASSERT_TRUE(pool.UnpinPage(a->page_id(), false).ok());
  ASSERT_TRUE(pool.UnpinPage(b->page_id(), false).ok());
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(BufferPoolTest, HitAndMissCounters) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  Page* a = *pool.NewPage();
  PageId id = a->page_id();
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  uint64_t misses_before = pool.miss_count();
  Page* again = *pool.FetchPage(id);
  EXPECT_EQ(pool.miss_count(), misses_before);  // Cached: hit.
  EXPECT_GT(pool.hit_count(), 0u);
  ASSERT_TRUE(pool.UnpinPage(again->page_id(), false).ok());
}

TEST(BufferPoolTest, UnpinUnknownPageFails) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 4);
  EXPECT_TRUE(pool.UnpinPage(999, false).IsKeyError());
}

TEST(FileDiskManagerTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/qdb_disk_test.db";
  std::remove(path.c_str());
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok());
    PageId id = *(*disk)->AllocatePage();
    char buf[kPageSize];
    std::memset(buf, 0x5A, kPageSize);
    ASSERT_TRUE((*disk)->WritePage(id, buf).ok());
    ASSERT_TRUE((*disk)->Sync().ok());
  }
  {
    auto disk = FileDiskManager::Open(path);
    ASSERT_TRUE(disk.ok());
    EXPECT_EQ((*disk)->num_pages(), 1u);
    char buf[kPageSize];
    ASSERT_TRUE((*disk)->ReadPage(0, buf).ok());
    EXPECT_EQ(static_cast<unsigned char>(buf[100]), 0x5A);
  }
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, ReadPastEndFails) {
  std::string path = ::testing::TempDir() + "/qdb_disk_test2.db";
  std::remove(path.c_str());
  auto disk = FileDiskManager::Open(path);
  ASSERT_TRUE(disk.ok());
  char buf[kPageSize];
  EXPECT_TRUE((*disk)->ReadPage(5, buf).IsOutOfRange());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qatk::db
