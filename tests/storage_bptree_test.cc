#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace qatk::db {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<InMemoryDiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 256);
    auto root = BPlusTree::Create(pool_.get());
    ASSERT_TRUE(root.ok());
    tree_ = std::make_unique<BPlusTree>(pool_.get(), *root);
  }

  static Rid MakeRid(uint32_t n) { return Rid{n, n * 7 + 1}; }

  std::unique_ptr<InMemoryDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BPlusTree> tree_;
};

TEST_F(BPlusTreeTest, InsertAndGet) {
  ASSERT_TRUE(tree_->Insert("hello", MakeRid(1)).ok());
  auto rid = tree_->Get("hello");
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(*rid, MakeRid(1));
}

TEST_F(BPlusTreeTest, GetMissingIsKeyError) {
  ASSERT_TRUE(tree_->Insert("a", MakeRid(1)).ok());
  EXPECT_TRUE(tree_->Get("b").status().IsKeyError());
  EXPECT_TRUE(tree_->Get("").status().IsKeyError());
}

TEST_F(BPlusTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_->Insert("k", MakeRid(1)).ok());
  EXPECT_TRUE(tree_->Insert("k", MakeRid(2)).IsAlreadyExists());
}

TEST_F(BPlusTreeTest, OversizedKeyRejected) {
  std::string huge(kMaxBPTreeKey + 1, 'x');
  EXPECT_TRUE(tree_->Insert(huge, MakeRid(1)).IsInvalid());
}

TEST_F(BPlusTreeTest, EmptyKeyWorks) {
  ASSERT_TRUE(tree_->Insert("", MakeRid(9)).ok());
  EXPECT_EQ(*tree_->Get(""), MakeRid(9));
}

TEST_F(BPlusTreeTest, ManyInsertsForceSplits) {
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    std::string key = "key-" + std::to_string(i * 31 % n) + "-suffix";
    ASSERT_TRUE(tree_->Insert(key, MakeRid(i)).ok()) << i;
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_EQ(*tree_->CountEntries(), static_cast<size_t>(n));
  for (int i = 0; i < n; i += 173) {
    std::string key = "key-" + std::to_string(i * 31 % n) + "-suffix";
    EXPECT_EQ(*tree_->Get(key), MakeRid(i));
  }
  EXPECT_GT(disk_->num_pages(), 10u) << "tree should have split many times";
}

TEST_F(BPlusTreeTest, LongKeysForceEarlySplits) {
  for (int i = 0; i < 200; ++i) {
    std::string key(900, 'k');
    key += std::to_string(i);
    ASSERT_TRUE(tree_->Insert(key, MakeRid(i)).ok()) << i;
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_EQ(*tree_->CountEntries(), 200u);
}

TEST_F(BPlusTreeTest, ScanRangeOrderedAndBounded) {
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(tree_->Insert(buf, MakeRid(i)).ok());
  }
  std::vector<std::string> keys;
  ASSERT_TRUE(tree_
                  ->ScanRange("k010", "k020",
                              [&](std::string_view k, const Rid&) {
                                keys.emplace_back(k);
                                return true;
                              })
                  .ok());
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), "k010");
  EXPECT_EQ(keys.back(), "k019");
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(BPlusTreeTest, ScanRangeEarlyStop) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Insert("k" + std::to_string(100 + i), MakeRid(i)).ok());
  }
  int count = 0;
  ASSERT_TRUE(tree_
                  ->ScanRange("", "",
                              [&](std::string_view, const Rid&) {
                                return ++count < 7;
                              })
                  .ok());
  EXPECT_EQ(count, 7);
}

TEST_F(BPlusTreeTest, ScanPrefix) {
  ASSERT_TRUE(tree_->Insert("part:A:1", MakeRid(1)).ok());
  ASSERT_TRUE(tree_->Insert("part:A:2", MakeRid(2)).ok());
  ASSERT_TRUE(tree_->Insert("part:B:1", MakeRid(3)).ok());
  ASSERT_TRUE(tree_->Insert("paru", MakeRid(4)).ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(tree_
                  ->ScanPrefix("part:A:",
                               [&](std::string_view k, const Rid&) {
                                 keys.emplace_back(k);
                                 return true;
                               })
                  .ok());
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "part:A:1");
  EXPECT_EQ(keys[1], "part:A:2");
}

TEST_F(BPlusTreeTest, ScanPrefixWith0xFFBytes) {
  std::string k1 = std::string("\xFF\xFF", 2) + "a";
  std::string k2 = std::string("\xFF\xFF", 2) + "b";
  ASSERT_TRUE(tree_->Insert(k1, MakeRid(1)).ok());
  ASSERT_TRUE(tree_->Insert(k2, MakeRid(2)).ok());
  int count = 0;
  ASSERT_TRUE(tree_
                  ->ScanPrefix(std::string("\xFF\xFF", 2),
                               [&](std::string_view, const Rid&) {
                                 ++count;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST_F(BPlusTreeTest, DeleteRemovesKey) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert("k" + std::to_string(i), MakeRid(i)).ok());
  }
  ASSERT_TRUE(tree_->Delete("k250").ok());
  EXPECT_TRUE(tree_->Get("k250").status().IsKeyError());
  EXPECT_TRUE(tree_->Delete("k250").IsKeyError());
  EXPECT_EQ(*tree_->CountEntries(), 499u);
  ASSERT_TRUE(tree_->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, ReinsertAfterDelete) {
  ASSERT_TRUE(tree_->Insert("x", MakeRid(1)).ok());
  ASSERT_TRUE(tree_->Delete("x").ok());
  ASSERT_TRUE(tree_->Insert("x", MakeRid(2)).ok());
  EXPECT_EQ(*tree_->Get("x"), MakeRid(2));
}

TEST_F(BPlusTreeTest, DeleteSpaceIsReclaimedOnPressure) {
  // Fill one leaf, delete everything, refill: the rebuild-on-full path must
  // reclaim orphaned cell space rather than splitting forever.
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> keys;
    for (int i = 0; i < 40; ++i) {
      std::string key(80, 'a' + (i % 26));
      key += std::to_string(round) + "_" + std::to_string(i);
      keys.push_back(key);
      ASSERT_TRUE(tree_->Insert(key, MakeRid(i)).ok());
    }
    for (const std::string& key : keys) {
      ASSERT_TRUE(tree_->Delete(key).ok());
    }
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_EQ(*tree_->CountEntries(), 0u);
}

// Randomized differential test against std::map.
class BPlusTreeRandomTest : public BPlusTreeTest,
                            public ::testing::WithParamInterface<uint64_t> {};

TEST_P(BPlusTreeRandomTest, MirrorsReferenceModel) {
  Rng rng(GetParam());
  std::map<std::string, Rid> model;
  for (int step = 0; step < 4000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.7 || model.empty()) {
      std::string key = "k" + std::to_string(rng.NextBounded(2000));
      key.append(rng.NextBounded(60), 'p');
      Rid rid = MakeRid(static_cast<uint32_t>(step));
      Status st = tree_->Insert(key, rid);
      if (model.count(key) > 0) {
        EXPECT_TRUE(st.IsAlreadyExists()) << key;
      } else {
        ASSERT_TRUE(st.ok()) << st.ToString();
        model[key] = rid;
      }
    } else if (dice < 0.9) {
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      ASSERT_TRUE(tree_->Delete(it->first).ok());
      model.erase(it);
    } else {
      // Random lookups.
      std::string key = "k" + std::to_string(rng.NextBounded(2000));
      auto found = tree_->Get(key);
      if (model.count(key) > 0) {
        ASSERT_TRUE(found.ok());
        EXPECT_EQ(*found, model[key]);
      } else {
        EXPECT_TRUE(found.status().IsKeyError());
      }
    }
  }
  ASSERT_TRUE(tree_->CheckInvariants().ok());
  // Final: full scan matches model exactly, in order.
  std::vector<std::pair<std::string, Rid>> scanned;
  ASSERT_TRUE(tree_
                  ->ScanRange("", "",
                              [&](std::string_view k, const Rid& r) {
                                scanned.emplace_back(std::string(k), r);
                                return true;
                              })
                  .ok());
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [key, rid] : model) {
    EXPECT_EQ(scanned[i].first, key);
    EXPECT_EQ(scanned[i].second, rid);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST_F(BPlusTreeTest, SmallBufferPoolStillCorrect) {
  // The tree must work with heavy eviction pressure.
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  auto root = BPlusTree::Create(&pool);
  ASSERT_TRUE(root.ok());
  BPlusTree tree(&pool, *root);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert("key" + std::to_string(i), MakeRid(i)).ok()) << i;
  }
  EXPECT_GT(pool.eviction_count(), 0u);
  for (int i = 0; i < 2000; i += 111) {
    EXPECT_EQ(*tree.Get("key" + std::to_string(i)), MakeRid(i));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

}  // namespace
}  // namespace qatk::db
