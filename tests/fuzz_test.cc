// Randomized differential and fault-injection tests across module
// boundaries: SQL vs a reference evaluator, WAL crash-point truncation,
// taxonomy XML round trips over generated worlds, and tokenizer robustness
// on arbitrary byte soup. All seeds fixed: failures reproduce exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "datagen/world.h"
#include "storage/database.h"
#include "storage/sql.h"
#include "storage/wal.h"
#include "taxonomy/xml.h"
#include "text/tokenizer.h"

namespace qatk {
namespace {

// ---------------------------------------------------------------------------
// SQL differential fuzz: random WHERE predicates against a reference model.
// ---------------------------------------------------------------------------

struct RefRow {
  std::string s;
  int64_t n;
};

class SqlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlFuzzTest, SelectWhereMatchesReferenceFilter) {
  Rng rng(GetParam());
  auto db = db::Database::OpenInMemory(512);
  ASSERT_TRUE(db.ok());
  db::SqlSession session(db->get());
  ASSERT_TRUE(
      session.Execute("CREATE TABLE t (s STRING, n INT)").ok());
  if (rng.NextBernoulli(0.5)) {
    ASSERT_TRUE(session.Execute("CREATE INDEX t_s ON t (s)").ok());
  }

  // Populate with a small value domain so predicates actually select.
  std::vector<RefRow> reference;
  const char* strings[] = {"alpha", "beta", "gamma", "delta"};
  for (int i = 0; i < 200; ++i) {
    RefRow row{strings[rng.NextBounded(4)],
               static_cast<int64_t>(rng.NextInt(-5, 5))};
    reference.push_back(row);
    ASSERT_TRUE(session
                    .Execute("INSERT INTO t VALUES ('" + row.s + "', " +
                             std::to_string(row.n) + ")")
                    .ok());
  }

  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  for (int query = 0; query < 60; ++query) {
    // 1-2 random terms.
    struct Term {
      bool on_string;
      std::string op;
      std::string s_value;
      int64_t n_value;
    };
    std::vector<Term> terms;
    size_t num_terms = 1 + rng.NextBounded(2);
    for (size_t i = 0; i < num_terms; ++i) {
      Term term;
      term.on_string = rng.NextBernoulli(0.5);
      term.op = ops[rng.NextBounded(6)];
      term.s_value = strings[rng.NextBounded(4)];
      term.n_value = rng.NextInt(-5, 5);
      terms.push_back(term);
    }
    std::string sql = "SELECT * FROM t WHERE ";
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) sql += " AND ";
      if (terms[i].on_string) {
        sql += "s " + terms[i].op + " '" + terms[i].s_value + "'";
      } else {
        sql += "n " + terms[i].op + " " + std::to_string(terms[i].n_value);
      }
    }
    auto result = session.Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status();

    size_t expected = 0;
    for (const RefRow& row : reference) {
      bool match = true;
      for (const Term& term : terms) {
        int cmp = term.on_string
                      ? row.s.compare(term.s_value)
                      : (row.n < term.n_value ? -1
                                              : (row.n > term.n_value ? 1 : 0));
        bool ok = false;
        if (term.op == "=") ok = cmp == 0;
        else if (term.op == "!=") ok = cmp != 0;
        else if (term.op == "<") ok = cmp < 0;
        else if (term.op == "<=") ok = cmp <= 0;
        else if (term.op == ">") ok = cmp > 0;
        else ok = cmp >= 0;
        if (!ok) {
          match = false;
          break;
        }
      }
      if (match) ++expected;
    }
    EXPECT_EQ(result->rows.size(), expected) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// WAL crash-point fuzz: truncate the redo log at arbitrary byte offsets.
// ---------------------------------------------------------------------------

class WalTruncationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalTruncationFuzzTest, ArbitraryTruncationYieldsConsistentPrefix) {
  Rng rng(GetParam());
  std::string path =
      ::testing::TempDir() + "/wal_fuzz_" + std::to_string(GetParam());
  auto cleanup = [&]() {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    std::remove((path + ".journal").c_str());
  };
  cleanup();
  const int kRows = 60;
  {
    auto db = db::Database::OpenFile(path, 32);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(
                        "t", db::Schema({{"k", db::TypeId::kString}}))
                    .ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("t", db::Tuple({db::Value("k" + std::to_string(i))}))
              .ok());
    }
    // Crash without checkpoint.
  }
  // Chop the WAL at a random byte offset (simulated torn write).
  long wal_size = 0;
  {
    std::FILE* f = std::fopen((path + ".wal").c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    wal_size = std::ftell(f);
    std::fclose(f);
  }
  ASSERT_GT(wal_size, 0);
  long cut = static_cast<long>(
      rng.NextBounded(static_cast<uint64_t>(wal_size)) + 1);
  ASSERT_EQ(truncate((path + ".wal").c_str(), cut), 0);

  auto db = db::Database::OpenFile(path, 32);
  ASSERT_TRUE(db.ok()) << db.status();
  // The surviving rows must be exactly a prefix k0..k(n-1) of the inserts.
  // If the cut fell inside the CREATE TABLE record, nothing replays and
  // even the table is gone — the empty prefix.
  std::map<int, bool> present;
  size_t count = 0;
  if ((*db)->GetTable("t").status().IsKeyError()) {
    cleanup();
    return;
  }
  ASSERT_TRUE((*db)->ScanTable("t", [&](const db::Rid&, const db::Tuple& t) {
    std::string key = t.value(0).AsString();
    present[std::stoi(key.substr(1))] = true;
    ++count;
    return true;
  }).ok());
  EXPECT_LE(count, static_cast<size_t>(kRows));
  for (size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(present.count(static_cast<int>(i)))
        << "recovered rows must form a contiguous prefix";
  }
  cleanup();
}

INSTANTIATE_TEST_SUITE_P(CutPoints, WalTruncationFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Taxonomy XML round trip over a full generated world.
// ---------------------------------------------------------------------------

TEST(TaxonomyXmlFuzzTest, GeneratedWorldRoundTripsExactly) {
  datagen::WorldConfig config;
  config.num_parts = 6;
  config.num_article_codes = 40;
  config.num_error_codes = 80;
  config.max_codes_largest_part = 25;
  config.small_parts = 2;
  config.num_components = 120;
  config.num_symptoms = 110;
  config.num_locations = 40;
  config.num_solutions = 40;
  datagen::DomainWorld world(config);
  const tax::Taxonomy& original = world.taxonomy();

  std::string xml = tax::TaxonomyToXml(original);
  auto loaded = tax::TaxonomyFromXml(xml);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (const tax::Concept* leaf : original.All()) {
    auto other = loaded->Find(leaf->id);
    ASSERT_TRUE(other.ok());
    EXPECT_EQ((*other)->label, leaf->label);
    EXPECT_EQ((*other)->category, leaf->category);
    EXPECT_EQ((*other)->parent_id, leaf->parent_id);
    EXPECT_EQ((*other)->synonyms, leaf->synonyms);
  }
  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(tax::TaxonomyToXml(*loaded), xml);
}

// ---------------------------------------------------------------------------
// Tokenizer robustness on arbitrary byte soup.
// ---------------------------------------------------------------------------

TEST(TokenizerFuzzTest, ArbitraryBytesNeverBreakInvariants) {
  Rng rng(777);
  text::Tokenizer tokenizer;
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    auto tokens = tokenizer.Tokenize(input);
    size_t prev_end = 0;
    for (const text::Token& token : tokens) {
      EXPECT_LT(token.begin, token.end);
      EXPECT_LE(token.end, input.size());
      EXPECT_GE(token.begin, prev_end) << "tokens must not overlap";
      prev_end = token.end;
      EXPECT_EQ(input.substr(token.begin, token.end - token.begin),
                token.text);
    }
  }
}

}  // namespace
}  // namespace qatk
