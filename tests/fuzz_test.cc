// Randomized differential and fault-injection tests across module
// boundaries: SQL vs a reference evaluator, WAL crash-point truncation,
// taxonomy XML round trips over generated worlds, and tokenizer robustness
// on arbitrary byte soup. All seeds fixed: failures reproduce exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "common/rng.h"
#include "datagen/world.h"
#include "kb/posting_codec.h"
#include "server/json.h"
#include "server/protocol.h"
#include "storage/database.h"
#include "storage/sql.h"
#include "storage/wal.h"
#include "taxonomy/xml.h"
#include "text/tokenizer.h"

namespace qatk {
namespace {

// ---------------------------------------------------------------------------
// SQL differential fuzz: random WHERE predicates against a reference model.
// ---------------------------------------------------------------------------

struct RefRow {
  std::string s;
  int64_t n;
};

class SqlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlFuzzTest, SelectWhereMatchesReferenceFilter) {
  Rng rng(GetParam());
  auto db = db::Database::OpenInMemory(512);
  ASSERT_TRUE(db.ok());
  db::SqlSession session(db->get());
  ASSERT_TRUE(
      session.Execute("CREATE TABLE t (s STRING, n INT)").ok());
  if (rng.NextBernoulli(0.5)) {
    ASSERT_TRUE(session.Execute("CREATE INDEX t_s ON t (s)").ok());
  }

  // Populate with a small value domain so predicates actually select.
  std::vector<RefRow> reference;
  const char* strings[] = {"alpha", "beta", "gamma", "delta"};
  for (int i = 0; i < 200; ++i) {
    RefRow row{strings[rng.NextBounded(4)],
               static_cast<int64_t>(rng.NextInt(-5, 5))};
    reference.push_back(row);
    ASSERT_TRUE(session
                    .Execute("INSERT INTO t VALUES ('" + row.s + "', " +
                             std::to_string(row.n) + ")")
                    .ok());
  }

  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  for (int query = 0; query < 60; ++query) {
    // 1-2 random terms.
    struct Term {
      bool on_string;
      std::string op;
      std::string s_value;
      int64_t n_value;
    };
    std::vector<Term> terms;
    size_t num_terms = 1 + rng.NextBounded(2);
    for (size_t i = 0; i < num_terms; ++i) {
      Term term;
      term.on_string = rng.NextBernoulli(0.5);
      term.op = ops[rng.NextBounded(6)];
      term.s_value = strings[rng.NextBounded(4)];
      term.n_value = rng.NextInt(-5, 5);
      terms.push_back(term);
    }
    std::string sql = "SELECT * FROM t WHERE ";
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) sql += " AND ";
      if (terms[i].on_string) {
        sql += "s " + terms[i].op + " '" + terms[i].s_value + "'";
      } else {
        sql += "n " + terms[i].op + " " + std::to_string(terms[i].n_value);
      }
    }
    auto result = session.Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status();

    size_t expected = 0;
    for (const RefRow& row : reference) {
      bool match = true;
      for (const Term& term : terms) {
        int cmp = term.on_string
                      ? row.s.compare(term.s_value)
                      : (row.n < term.n_value ? -1
                                              : (row.n > term.n_value ? 1 : 0));
        bool ok = false;
        if (term.op == "=") ok = cmp == 0;
        else if (term.op == "!=") ok = cmp != 0;
        else if (term.op == "<") ok = cmp < 0;
        else if (term.op == "<=") ok = cmp <= 0;
        else if (term.op == ">") ok = cmp > 0;
        else ok = cmp >= 0;
        if (!ok) {
          match = false;
          break;
        }
      }
      if (match) ++expected;
    }
    EXPECT_EQ(result->rows.size(), expected) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// WAL crash-point fuzz: truncate the redo log at arbitrary byte offsets.
// ---------------------------------------------------------------------------

class WalTruncationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalTruncationFuzzTest, ArbitraryTruncationYieldsConsistentPrefix) {
  Rng rng(GetParam());
  std::string path =
      ::testing::TempDir() + "/wal_fuzz_" + std::to_string(GetParam());
  auto cleanup = [&]() {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    std::remove((path + ".journal").c_str());
  };
  cleanup();
  const int kRows = 60;
  {
    auto db = db::Database::OpenFile(path, 32);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTable(
                        "t", db::Schema({{"k", db::TypeId::kString}}))
                    .ok());
    for (int i = 0; i < kRows; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("t", db::Tuple({db::Value("k" + std::to_string(i))}))
              .ok());
    }
    // Crash without checkpoint.
  }
  // Chop the WAL at a random byte offset (simulated torn write).
  long wal_size = 0;
  {
    std::FILE* f = std::fopen((path + ".wal").c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    wal_size = std::ftell(f);
    std::fclose(f);
  }
  ASSERT_GT(wal_size, 0);
  long cut = static_cast<long>(
      rng.NextBounded(static_cast<uint64_t>(wal_size)) + 1);
  ASSERT_EQ(truncate((path + ".wal").c_str(), cut), 0);

  auto db = db::Database::OpenFile(path, 32);
  ASSERT_TRUE(db.ok()) << db.status();
  // The surviving rows must be exactly a prefix k0..k(n-1) of the inserts.
  // If the cut fell inside the CREATE TABLE record, nothing replays and
  // even the table is gone — the empty prefix.
  std::map<int, bool> present;
  size_t count = 0;
  if ((*db)->GetTable("t").status().IsKeyError()) {
    cleanup();
    return;
  }
  ASSERT_TRUE((*db)->ScanTable("t", [&](const db::Rid&, const db::Tuple& t) {
    std::string key = t.value(0).AsString();
    present[std::stoi(key.substr(1))] = true;
    ++count;
    return true;
  }).ok());
  EXPECT_LE(count, static_cast<size_t>(kRows));
  for (size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(present.count(static_cast<int>(i)))
        << "recovered rows must form a contiguous prefix";
  }
  cleanup();
}

INSTANTIATE_TEST_SUITE_P(CutPoints, WalTruncationFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Taxonomy XML round trip over a full generated world.
// ---------------------------------------------------------------------------

TEST(TaxonomyXmlFuzzTest, GeneratedWorldRoundTripsExactly) {
  datagen::WorldConfig config;
  config.num_parts = 6;
  config.num_article_codes = 40;
  config.num_error_codes = 80;
  config.max_codes_largest_part = 25;
  config.small_parts = 2;
  config.num_components = 120;
  config.num_symptoms = 110;
  config.num_locations = 40;
  config.num_solutions = 40;
  datagen::DomainWorld world(config);
  const tax::Taxonomy& original = world.taxonomy();

  std::string xml = tax::TaxonomyToXml(original);
  auto loaded = tax::TaxonomyFromXml(xml);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), original.size());
  for (const tax::Concept* leaf : original.All()) {
    auto other = loaded->Find(leaf->id);
    ASSERT_TRUE(other.ok());
    EXPECT_EQ((*other)->label, leaf->label);
    EXPECT_EQ((*other)->category, leaf->category);
    EXPECT_EQ((*other)->parent_id, leaf->parent_id);
    EXPECT_EQ((*other)->synonyms, leaf->synonyms);
  }
  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(tax::TaxonomyToXml(*loaded), xml);
}

// ---------------------------------------------------------------------------
// Wire JSON codec: random documents must round-trip byte-identically, and
// a malformed-frame corpus must fail cleanly (no crash, no bogus accept).
// ---------------------------------------------------------------------------

/// Random JSON value: all six types, arbitrary string bytes (controls,
/// quotes, broken UTF-8 — Dump escapes what must be escaped), finite
/// doubles drawn from raw bit patterns so exponents cover the full range.
server::Json RandomJson(Rng* rng, int depth) {
  const uint64_t kind = rng->NextBounded(depth > 0 ? 6 : 4);
  switch (kind) {
    case 0:
      return server::Json();
    case 1:
      return server::Json(rng->NextBernoulli(0.5));
    case 2: {
      if (rng->NextBernoulli(0.5)) {
        return server::Json(rng->NextInt(-1000000000, 1000000000));
      }
      double value = 0;
      do {
        const uint64_t bits = rng->Next();
        std::memcpy(&value, &bits, sizeof(value));
      } while (!std::isfinite(value));
      return server::Json(value);
    }
    case 3: {
      std::string s;
      const size_t len = rng->NextBounded(24);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->NextBounded(256)));
      }
      return server::Json(s);
    }
    case 4: {
      server::Json array = server::Json::Array();
      const size_t n = rng->NextBounded(5);
      for (size_t i = 0; i < n; ++i) {
        array.Append(RandomJson(rng, depth - 1));
      }
      return array;
    }
    default: {
      server::Json object = server::Json::Object();
      const size_t n = rng->NextBounded(5);
      for (size_t i = 0; i < n; ++i) {
        object.Set("k" + std::to_string(i), RandomJson(rng, depth - 1));
      }
      return object;
    }
  }
}

TEST(JsonCodecFuzzTest, RandomValuesRoundTripByteIdentical) {
  Rng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    const server::Json value = RandomJson(&rng, 4);
    const std::string first = value.Dump();
    auto parsed = server::Json::Parse(first);
    ASSERT_TRUE(parsed.ok()) << first << ": " << parsed.status();
    // Dump is canonical, so Serialize -> Parse -> Serialize is the
    // identity on bytes — the property the wire-equivalence bench gate
    // (bit-identical responses) rests on.
    EXPECT_EQ(parsed->Dump(), first) << first;
  }
}

TEST(JsonCodecFuzzTest, RequestsRoundTripThroughFraming) {
  Rng rng(515);
  const char* methods[] = {"Recommend", "RecommendForText", "Health",
                           "Stats",     "MetricsText",      "NoSuchMethod"};
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t id = rng.NextInt(-1000, 1000000);
    const std::string method = methods[rng.NextBounded(6)];
    const int64_t deadline =
        rng.NextBernoulli(0.5) ? rng.NextInt(1, 60000) : -1;
    server::Json params = server::Json::Object();
    const size_t n = rng.NextBounded(4);
    for (size_t i = 0; i < n; ++i) {
      params.Set("p" + std::to_string(i), RandomJson(&rng, 2));
    }
    const std::string payload =
        server::EncodeRequest(id, method, params, deadline);
    std::string buffer;
    server::AppendFrame(payload, &buffer);
    const server::FrameDecode decode = server::DecodeFrame(buffer);
    ASSERT_EQ(decode.state, server::FrameDecode::State::kFrame);
    EXPECT_EQ(decode.consumed, buffer.size());
    auto request = server::ParseRequest(decode.payload);
    ASSERT_TRUE(request.ok()) << payload << ": " << request.status();
    EXPECT_EQ(request->id, id);
    EXPECT_EQ(request->method_name, method);
    EXPECT_EQ(request->deadline_ms, deadline);
    EXPECT_EQ(server::EncodeRequest(request->id, request->method_name,
                                    request->params, request->deadline_ms),
              payload);
  }
}

TEST(FrameFuzzTest, TruncatedPrefixAndPayloadWantMoreBytes) {
  using State = server::FrameDecode::State;
  // Fewer bytes than the length prefix: kNeedMore, nothing consumed.
  for (size_t len = 0; len < server::kLengthPrefixBytes; ++len) {
    const std::string buffer(len, '\x01');
    EXPECT_EQ(server::DecodeFrame(buffer).state, State::kNeedMore);
  }
  // Complete prefix, truncated payload at every cut: still kNeedMore.
  std::string buffer;
  server::AppendFrame("{\"id\":1,\"method\":\"Health\"}", &buffer);
  for (size_t cut = server::kLengthPrefixBytes; cut < buffer.size(); ++cut) {
    const server::FrameDecode decode =
        server::DecodeFrame(std::string_view(buffer).substr(0, cut));
    EXPECT_EQ(decode.state, State::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(decode.consumed, 0u);
  }
}

TEST(FrameFuzzTest, OverlongAndZeroLengthsAreErrors) {
  using State = server::FrameDecode::State;
  // A length prefix above the cap must error before any allocation —
  // even though the buffer holds nowhere near that many bytes.
  const std::string overlong = {'\x7f', '\x7f', '\x7f', '\x7f'};
  EXPECT_EQ(server::DecodeFrame(overlong, 1024).state, State::kError);
  const std::string zero(server::kLengthPrefixBytes, '\0');
  EXPECT_EQ(server::DecodeFrame(zero).state, State::kError);
}

TEST(FrameFuzzTest, HostilePayloadCorpusFailsCleanly) {
  // Each entry must produce a clean parse error — not a crash and not a
  // silently-accepted request.
  const std::vector<std::string> must_fail = {
      "",                                       // empty document
      "\xff\xfe{\"method\":\"Health\"}",        // garbage before document
      "{\"method\":\"\\ud800\"}",               // lone high surrogate
      "{\"method\":\"\\udc00\"}",               // lone low surrogate
      "{\"method\":\"\\ud800x\"}",              // surrogate cut short
      "{\"method\":\"Health\"",                 // truncated object
      "{\"id\":01,\"method\":\"x\"}",           // leading-zero number
      "[\"not\",\"an\",\"object\"]",            // non-object document
      "{\"id\":1}",                             // missing method
      "{\"method\":42}",                        // non-string method
      "{\"method\":\"x\"}trailing",             // trailing garbage
      std::string("{\"method\":\"x\"}\0", 16),  // embedded NUL after doc
  };
  for (const std::string& payload : must_fail) {
    auto request = server::ParseRequest(payload);
    EXPECT_FALSE(request.ok()) << payload;
    EXPECT_FALSE(request.status().ToString().empty());
  }
  // Raw invalid UTF-8 *inside* a string is carried as opaque bytes (the
  // codec escapes but does not validate encodings); it must parse without
  // crashing and fall out as an unknown method, never undefined behavior.
  auto raw = server::ParseRequest("{\"id\":1,\"method\":\"\xc3\x28\"}");
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_EQ(raw->method, server::Method::kUnknown);
}

TEST(FrameFuzzTest, RandomByteSoupNeverCrashesDecoderOrParsers) {
  Rng rng(999);
  for (int trial = 0; trial < 500; ++trial) {
    std::string buffer;
    const size_t len = rng.NextBounded(64);
    for (size_t i = 0; i < len; ++i) {
      buffer.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    const server::FrameDecode decode = server::DecodeFrame(buffer, 4096);
    if (decode.state == server::FrameDecode::State::kFrame) {
      EXPECT_LE(decode.consumed, buffer.size());
      // Whatever came out must hit the parsers without incident; both ok
      // and error outcomes are fine, crashes and sanitizer reports are
      // not.
      server::ParseRequest(decode.payload).status();
      server::ParseResponse(decode.payload).status();
    }
  }
}

// ---------------------------------------------------------------------------
// Tokenizer robustness on arbitrary byte soup.
// ---------------------------------------------------------------------------

TEST(TokenizerFuzzTest, ArbitraryBytesNeverBreakInvariants) {
  Rng rng(777);
  text::Tokenizer tokenizer;
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    auto tokens = tokenizer.Tokenize(input);
    size_t prev_end = 0;
    for (const text::Token& token : tokens) {
      EXPECT_LT(token.begin, token.end);
      EXPECT_LE(token.end, input.size());
      EXPECT_GE(token.begin, prev_end) << "tokens must not overlap";
      prev_end = token.end;
      EXPECT_EQ(input.substr(token.begin, token.end - token.begin),
                token.text);
    }
  }
}

// ---------------------------------------------------------------------------
// u16-delta posting block codec: byte-identical round trips + hostile input.
// ---------------------------------------------------------------------------

class PostingCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

/// Round trip over posting lists drawn from the regimes the frozen index
/// produces — dense low ids, sparse ids forcing deltas past 16 bits (block
/// splits), and exact block-boundary lengths. Decoding must reproduce the
/// ids exactly, and re-encoding the decoded list must reproduce the block
/// and delta arrays byte for byte (the encoder is canonical).
TEST_P(PostingCodecFuzzTest, RoundTripsByteIdentically) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    // Sizes hit 0, 1, exact multiples of the block size, and ragged tails.
    const size_t size_choices[] = {0, 1, 63, 64, 65, 128,
                                   rng.NextBounded(400)};
    const size_t n = size_choices[rng.NextBounded(7)];
    // Gap regime: dense (delta ~1-3), blocky (~1000), or hostile-sparse
    // (past 65535, forcing a fresh block mid-list).
    const uint64_t gap_caps[] = {3, 1000, 200000};
    const uint64_t gap_cap = gap_caps[rng.NextBounded(3)];
    std::vector<uint32_t> ids;
    uint64_t next = rng.NextBounded(1000);
    for (size_t i = 0; i < n; ++i) {
      if (next > 0xFFFFFFFFull) break;
      ids.push_back(static_cast<uint32_t>(next));
      next += 1 + rng.NextBounded(gap_cap);
    }

    std::vector<kb::PostingBlock> blocks;
    std::vector<uint16_t> deltas;
    const size_t appended = kb::EncodePostingBlocks(
        ids.data(), ids.size(), kb::kPostingBlockSize, &blocks, &deltas);
    ASSERT_EQ(appended, blocks.size());

    std::vector<uint32_t> decoded;
    ASSERT_TRUE(kb::DecodePostingBlocks(blocks, 0, blocks.size(), deltas,
                                        kb::kPostingBlockSize, &decoded)
                    .ok());
    ASSERT_EQ(ids, decoded);

    std::vector<kb::PostingBlock> blocks2;
    std::vector<uint16_t> deltas2;
    kb::EncodePostingBlocks(decoded.data(), decoded.size(),
                            kb::kPostingBlockSize, &blocks2, &deltas2);
    ASSERT_EQ(blocks.size(), blocks2.size());
    ASSERT_EQ(deltas.size(), deltas2.size());
    ASSERT_EQ(0, std::memcmp(blocks.data(), blocks2.data(),
                             blocks.size() * sizeof(kb::PostingBlock)));
    ASSERT_EQ(0, std::memcmp(deltas.data(), deltas2.data(),
                             deltas.size() * sizeof(uint16_t)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingCodecFuzzTest,
                         ::testing::Values(1u, 42u, 0xC0DECULL));

/// Hostile decodes: every structural-corruption class the validating
/// decoder guards against must come back as a Status error, never a crash
/// or a silently wrong list.
TEST(PostingCodecFuzzTest, HostileInputsAreRejected) {
  // A healthy two-block encoding to corrupt.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 100; ++i) ids.push_back(i * 3);
  std::vector<kb::PostingBlock> blocks;
  std::vector<uint16_t> deltas;
  kb::EncodePostingBlocks(ids.data(), ids.size(), kb::kPostingBlockSize,
                          &blocks, &deltas);
  ASSERT_EQ(blocks.size(), 2u);
  std::vector<uint32_t> out;

  {  // Out-of-bounds block range.
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(blocks, 0, blocks.size() + 1,
                                         deltas, kb::kPostingBlockSize, &out)
                     .ok());
    EXPECT_FALSE(kb::DecodePostingBlocks(blocks, 2, 1, deltas,
                                         kb::kPostingBlockSize, &out)
                     .ok());
  }
  {  // Empty block.
    auto bad = blocks;
    bad[0].count = 0;
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(bad, 0, bad.size(), deltas,
                                         kb::kPostingBlockSize, &out)
                     .ok());
  }
  {  // Oversized block.
    auto bad = blocks;
    bad[0].count = kb::kPostingBlockSize + 1;
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(bad, 0, bad.size(), deltas,
                                         kb::kPostingBlockSize, &out)
                     .ok());
  }
  {  // Truncated delta arena.
    auto short_deltas = deltas;
    short_deltas.resize(deltas.size() - 1);
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(blocks, 0, blocks.size(),
                                         short_deltas, kb::kPostingBlockSize,
                                         &out)
                     .ok());
  }
  {  // Delta offset pointing past the arena.
    auto bad = blocks;
    bad[1].delta_offset = static_cast<uint32_t>(deltas.size());
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(bad, 0, bad.size(), deltas,
                                         kb::kPostingBlockSize, &out)
                     .ok());
  }
  {  // Zero delta (postings must strictly increase inside a block).
    auto bad_deltas = deltas;
    bad_deltas[3] = 0;
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(blocks, 0, blocks.size(),
                                         bad_deltas, kb::kPostingBlockSize,
                                         &out)
                     .ok());
  }
  {  // Overflowing deltas: id accumulation must not wrap past uint32.
    std::vector<kb::PostingBlock> wrap{{0xFFFFFFF0u, 3, 0, 0}};
    std::vector<uint16_t> wrap_deltas{0xFFFF, 0xFFFF};
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(wrap, 0, 1, wrap_deltas,
                                         kb::kPostingBlockSize, &out)
                     .ok());
  }
  {  // Non-monotone block starts: block 2 restarting below block 1's end.
    auto bad = blocks;
    bad[1].first = 0;
    out.clear();
    EXPECT_FALSE(kb::DecodePostingBlocks(bad, 0, bad.size(), deltas,
                                         kb::kPostingBlockSize, &out)
                     .ok());
  }
  {  // The uncorrupted original still decodes after all of the above.
    out.clear();
    ASSERT_TRUE(kb::DecodePostingBlocks(blocks, 0, blocks.size(), deltas,
                                        kb::kPostingBlockSize, &out)
                    .ok());
    EXPECT_EQ(out, ids);
  }
}

}  // namespace
}  // namespace qatk
