#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/nhtsa.h"
#include "datagen/noise.h"
#include "datagen/oem.h"
#include "datagen/wordgen.h"
#include "datagen/world.h"
#include "text/language.h"
#include "text/tokenizer.h"

namespace qatk::datagen {
namespace {

using text::Language;

/// A smaller world so tests stay fast; same invariants as the default.
WorldConfig TestWorldConfig() {
  WorldConfig config;
  config.num_parts = 8;
  config.num_article_codes = 60;
  config.num_error_codes = 140;
  config.max_codes_largest_part = 40;
  config.mid_part_min_codes = 8;
  config.mid_part_max_codes = 30;
  config.small_parts = 2;
  config.num_components = 120;
  config.num_symptoms = 100;
  config.num_locations = 30;
  config.num_solutions = 30;
  config.components_per_part = 6;
  return config;
}

OemConfig TestOemConfig() {
  OemConfig config;
  config.num_bundles = 700;
  return config;
}

// ---------------------------------------------------------------------------
// WordGenerator / NoiseChannel
// ---------------------------------------------------------------------------

TEST(WordGeneratorTest, FreshWordsNeverRepeat) {
  Rng rng(5);
  WordGenerator words(&rng);
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    std::string word = words.FreshWord(
        i % 2 == 0 ? Language::kGerman : Language::kEnglish, 2);
    EXPECT_TRUE(seen.insert(word).second) << "duplicate: " << word;
  }
}

TEST(WordGeneratorTest, WordsAreLowercaseAlpha) {
  Rng rng(6);
  WordGenerator words(&rng);
  for (int i = 0; i < 200; ++i) {
    std::string word = words.Word(Language::kEnglish, 2);
    for (char c : word) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << word;
    }
    EXPECT_GE(word.size(), 2u);
  }
}

TEST(NoiseChannelTest, TypoChangesWord) {
  Rng rng(7);
  NoiseChannel noise(&rng);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (noise.Typo("schlauch") != "schlauch") ++changed;
  }
  EXPECT_GT(changed, 70) << "typos should nearly always alter the word";
}

TEST(NoiseChannelTest, ShortWordsPassThrough) {
  Rng rng(8);
  NoiseChannel noise(&rng);
  EXPECT_EQ(noise.Typo("ab"), "ab");
  EXPECT_EQ(noise.Typo(""), "");
}

TEST(NoiseChannelTest, MaybeTypoRespectsRate) {
  Rng rng(9);
  NoiseChannel noise(&rng);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(noise.MaybeTypo("bremse", 0.0), "bremse");
  }
}

TEST(NoiseChannelTest, AbbreviationKeepsPrefix) {
  Rng rng(10);
  NoiseChannel noise(&rng);
  for (int i = 0; i < 50; ++i) {
    std::string abbr = noise.MaybeAbbreviate("batterie", 1.0);
    ASSERT_GE(abbr.size(), 4u);
    EXPECT_EQ(abbr.back(), '.');
    EXPECT_EQ(abbr.substr(0, 3), "bat");
  }
  EXPECT_EQ(noise.MaybeAbbreviate("kurz", 1.0), "kurz") << "short words stay";
}

// ---------------------------------------------------------------------------
// DomainWorld
// ---------------------------------------------------------------------------

class DomainWorldTest : public ::testing::Test {
 protected:
  DomainWorldTest() : world_(TestWorldConfig()) {}
  DomainWorld world_;
};

TEST_F(DomainWorldTest, PartAndCodeCountsMatchConfig) {
  EXPECT_EQ(world_.parts().size(), 8u);
  EXPECT_EQ(world_.TotalErrorCodes(), 140u);
  EXPECT_EQ(world_.parts()[0].codes.size(), 40u);
}

TEST_F(DomainWorldTest, ArticleCodeBudgetFullyAssigned) {
  size_t total = 0;
  std::set<std::string> all;
  for (const PartSpec& part : world_.parts()) {
    total += part.article_codes.size();
    all.insert(part.article_codes.begin(), part.article_codes.end());
  }
  EXPECT_EQ(total, 60u);
  EXPECT_EQ(all.size(), 60u) << "article codes must be globally unique";
}

TEST_F(DomainWorldTest, ErrorCodesGloballyUnique) {
  std::set<std::string> codes;
  for (const PartSpec& part : world_.parts()) {
    for (const ErrorCodeSpec& spec : part.codes) {
      EXPECT_TRUE(codes.insert(spec.code).second);
      EXPECT_EQ(spec.part_id, part.part_id);
    }
  }
  EXPECT_EQ(codes.size(), 140u);
}

TEST_F(DomainWorldTest, CodeSemanticsWellFormed) {
  for (const PartSpec& part : world_.parts()) {
    for (const ErrorCodeSpec& spec : part.codes) {
      EXPECT_FALSE(spec.symptoms.empty());
      EXPECT_FALSE(spec.components.empty());
      EXPECT_FALSE(spec.cause_de.empty());
      EXPECT_FALSE(spec.cause_en.empty());
      EXPECT_FALSE(spec.defect_token.empty());
      EXPECT_FALSE(spec.description.empty());
      for (size_t si : spec.symptoms) {
        EXPECT_LT(si, world_.symptoms().size());
      }
      for (size_t ci : spec.components) {
        EXPECT_LT(ci, world_.components().size());
        // Components come from the owning part's slice.
        EXPECT_NE(std::find(part.components.begin(), part.components.end(),
                            ci),
                  part.components.end());
      }
    }
  }
}

TEST_F(DomainWorldTest, TaxonomyCoverageGapExists) {
  size_t covered = 0;
  size_t uncovered = 0;
  for (const LexEntry& entry : world_.symptoms()) {
    if (entry.concept_id == 0) {
      ++uncovered;
      EXPECT_FALSE(world_.taxonomy().Contains(entry.concept_id));
    } else {
      ++covered;
      EXPECT_TRUE(world_.taxonomy().Contains(entry.concept_id));
    }
  }
  EXPECT_GT(covered, 0u);
  EXPECT_GT(uncovered, 0u) << "the coverage gap drives the BoC deficit";
}

TEST_F(DomainWorldTest, TaxonomyHasFourRootsAndLeaves) {
  const tax::Taxonomy& taxonomy = world_.taxonomy();
  EXPECT_GT(taxonomy.size(), 100u);
  for (int64_t root = 1; root <= 4; ++root) {
    EXPECT_TRUE(taxonomy.Contains(root));
  }
  // Leaves reference a category root as parent.
  for (const tax::Concept* leaf : taxonomy.All()) {
    if (leaf->id <= 4) continue;
    EXPECT_GE(leaf->parent_id, 1);
    EXPECT_LE(leaf->parent_id, 4);
  }
}

TEST_F(DomainWorldTest, FindCode) {
  const std::string& code = world_.parts()[1].codes[2].code;
  auto spec = world_.FindCode(code);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->code, code);
  EXPECT_TRUE(world_.FindCode("E99999").status().IsKeyError());
}

TEST(DomainWorldDeterminismTest, SameSeedSameWorld) {
  DomainWorld a(TestWorldConfig());
  DomainWorld b(TestWorldConfig());
  ASSERT_EQ(a.parts().size(), b.parts().size());
  for (size_t p = 0; p < a.parts().size(); ++p) {
    ASSERT_EQ(a.parts()[p].codes.size(), b.parts()[p].codes.size());
    for (size_t c = 0; c < a.parts()[p].codes.size(); ++c) {
      EXPECT_EQ(a.parts()[p].codes[c].cause_de,
                b.parts()[p].codes[c].cause_de);
    }
  }
}

// ---------------------------------------------------------------------------
// OemCorpusGenerator
// ---------------------------------------------------------------------------

class OemCorpusTest : public ::testing::Test {
 protected:
  OemCorpusTest() : world_(TestWorldConfig()) {
    OemCorpusGenerator generator(&world_, TestOemConfig());
    corpus_ = generator.Generate();
  }
  DomainWorld world_;
  kb::Corpus corpus_;
};

TEST_F(OemCorpusTest, EveryCodeOccursAtLeastOnce) {
  std::set<std::string> seen;
  for (const kb::DataBundle& bundle : corpus_.bundles) {
    seen.insert(bundle.error_code);
  }
  EXPECT_EQ(seen.size(), world_.TotalErrorCodes());
}

TEST_F(OemCorpusTest, BundleFieldsWellFormed) {
  std::set<std::string> refs;
  size_t with_initial = 0;
  for (const kb::DataBundle& bundle : corpus_.bundles) {
    EXPECT_TRUE(refs.insert(bundle.reference_number).second);
    EXPECT_FALSE(bundle.part_id.empty());
    EXPECT_FALSE(bundle.article_code.empty());
    EXPECT_FALSE(bundle.mechanic_report.empty());
    EXPECT_FALSE(bundle.supplier_report.empty());
    EXPECT_FALSE(bundle.final_oem_report.empty());
    EXPECT_FALSE(bundle.responsibility_code.empty());
    if (!bundle.initial_oem_report.empty()) ++with_initial;
    // The code belongs to the bundle's part.
    auto spec = world_.FindCode(bundle.error_code);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ((*spec)->part_id, bundle.part_id);
  }
  EXPECT_EQ(corpus_.bundles.size(), 700u);
  // Initial report is optional (~40%).
  double initial_rate =
      static_cast<double>(with_initial) / corpus_.bundles.size();
  EXPECT_GT(initial_rate, 0.25);
  EXPECT_LT(initial_rate, 0.55);
}

TEST_F(OemCorpusTest, DescriptionsCoverAllPartsAndCodes) {
  for (const PartSpec& part : world_.parts()) {
    EXPECT_TRUE(corpus_.part_descriptions.count(part.part_id) > 0);
    for (const ErrorCodeSpec& spec : part.codes) {
      EXPECT_TRUE(corpus_.error_descriptions.count(spec.code) > 0);
    }
  }
}

TEST_F(OemCorpusTest, Deterministic) {
  OemCorpusGenerator generator(&world_, TestOemConfig());
  kb::Corpus again = generator.Generate();
  ASSERT_EQ(again.bundles.size(), corpus_.bundles.size());
  for (size_t i = 0; i < again.bundles.size(); i += 37) {
    EXPECT_EQ(again.bundles[i].mechanic_report,
              corpus_.bundles[i].mechanic_report);
    EXPECT_EQ(again.bundles[i].error_code, corpus_.bundles[i].error_code);
  }
}

TEST_F(OemCorpusTest, ReportsAreMessy) {
  // Some reports must contain jargon tokens and some must be terse.
  size_t with_jargon = 0;
  size_t terse_mechanic = 0;
  text::Tokenizer tokenizer;
  for (const kb::DataBundle& bundle : corpus_.bundles) {
    for (const std::string& jargon : world_.jargon()) {
      if (bundle.supplier_report.find(jargon) != std::string::npos ||
          bundle.mechanic_report.find(jargon) != std::string::npos) {
        ++with_jargon;
        break;
      }
    }
    if (tokenizer.WordsNormalized(bundle.mechanic_report).size() <= 3) {
      ++terse_mechanic;
    }
  }
  EXPECT_GT(with_jargon, corpus_.bundles.size() / 5);
  EXPECT_GT(terse_mechanic, corpus_.bundles.size() / 25);
}

TEST_F(OemCorpusTest, ZipfSkewInErrorCodes) {
  std::map<std::string, size_t> counts;
  for (const kb::DataBundle& bundle : corpus_.bundles) {
    ++counts[bundle.error_code];
  }
  size_t max_count = 0;
  for (const auto& [code, count] : counts) {
    max_count = std::max(max_count, count);
  }
  double mean = static_cast<double>(corpus_.bundles.size()) / counts.size();
  EXPECT_GT(static_cast<double>(max_count), 5.0 * mean)
      << "frequency distribution must be heavily skewed";
}

TEST(OemCorpusSmallTest, RejectsTooFewBundles) {
  DomainWorld world(TestWorldConfig());
  OemConfig config;
  config.num_bundles = 10;  // Fewer than error codes.
  OemCorpusGenerator generator(&world, config);
  EXPECT_DEATH(generator.Generate(), "at least one bundle per error code");
}

// ---------------------------------------------------------------------------
// NHTSA generator
// ---------------------------------------------------------------------------

TEST(NhtsaTest, ComplaintsWellFormed) {
  DomainWorld world(TestWorldConfig());
  NhtsaConfig config;
  config.num_complaints = 300;
  NhtsaComplaintGenerator generator(&world, config);
  auto complaints = generator.Generate();
  ASSERT_EQ(complaints.size(), 300u);
  std::set<std::string> odi_numbers;
  std::set<std::string> makes;
  for (const NhtsaComplaint& complaint : complaints) {
    EXPECT_TRUE(odi_numbers.insert(complaint.odi_number).second);
    makes.insert(complaint.make);
    EXPECT_FALSE(complaint.narrative.empty());
    EXPECT_FALSE(complaint.component_text.empty());
    auto spec = world.FindCode(complaint.latent_error_code);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ((*spec)->part_id, complaint.part_id);
  }
  EXPECT_GT(makes.size(), 2u) << "multiple manufacturers";
}

TEST(NhtsaTest, NarrativesAreEnglishRegister) {
  DomainWorld world(TestWorldConfig());
  NhtsaConfig config;
  config.num_complaints = 100;
  NhtsaComplaintGenerator generator(&world, config);
  text::LanguageDetector detector;
  size_t english = 0;
  for (const NhtsaComplaint& complaint : generator.Generate()) {
    if (detector.Detect(complaint.narrative) == Language::kEnglish) {
      ++english;
    }
  }
  EXPECT_GT(english, 85u) << "consumer complaints are English";
}

TEST(NhtsaTest, Deterministic) {
  DomainWorld world(TestWorldConfig());
  NhtsaConfig config;
  config.num_complaints = 50;
  NhtsaComplaintGenerator a(&world, config);
  NhtsaComplaintGenerator b(&world, config);
  auto ca = a.Generate();
  auto cb = b.Generate();
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].narrative, cb[i].narrative);
  }
}

}  // namespace
}  // namespace qatk::datagen
