#include <gtest/gtest.h>

#include "cas/annotators.h"
#include "cas/cas.h"
#include "cas/pipeline.h"

namespace qatk::cas {
namespace {

Annotation Make(const std::string& type, size_t begin, size_t end) {
  Annotation a;
  a.type = type;
  a.begin = begin;
  a.end = end;
  return a;
}

TEST(CasTest, AddAndSelect) {
  Cas cas("hello world");
  ASSERT_TRUE(cas.Add(Make("Token", 0, 5)).ok());
  ASSERT_TRUE(cas.Add(Make("Token", 6, 11)).ok());
  auto tokens = cas.Select("Token");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(cas.CoveredText(*tokens[0]), "hello");
  EXPECT_EQ(cas.CoveredText(*tokens[1]), "world");
}

TEST(CasTest, SelectKeepsSpanOrder) {
  Cas cas("abcdef");
  ASSERT_TRUE(cas.Add(Make("T", 4, 5)).ok());
  ASSERT_TRUE(cas.Add(Make("T", 0, 2)).ok());
  ASSERT_TRUE(cas.Add(Make("T", 2, 4)).ok());
  ASSERT_TRUE(cas.Add(Make("T", 0, 1)).ok());
  auto anns = cas.Select("T");
  ASSERT_EQ(anns.size(), 4u);
  EXPECT_EQ(anns[0]->begin, 0u);
  EXPECT_EQ(anns[0]->end, 1u);
  EXPECT_EQ(anns[1]->begin, 0u);
  EXPECT_EQ(anns[1]->end, 2u);
  EXPECT_EQ(anns[2]->begin, 2u);
  EXPECT_EQ(anns[3]->begin, 4u);
}

TEST(CasTest, RejectsOutOfBoundsSpans) {
  Cas cas("short");
  EXPECT_TRUE(cas.Add(Make("T", 0, 6)).IsInvalid());
  EXPECT_TRUE(cas.Add(Make("T", 3, 2)).IsInvalid());
  EXPECT_TRUE(cas.Add(Make("", 0, 1)).IsInvalid());
}

TEST(CasTest, SelectUnknownTypeIsEmpty) {
  Cas cas("x");
  EXPECT_TRUE(cas.Select("Nope").empty());
  EXPECT_EQ(cas.CountType("Nope"), 0u);
}

TEST(CasTest, SelectCovered) {
  Cas cas("0123456789");
  ASSERT_TRUE(cas.Add(Make("T", 0, 3)).ok());
  ASSERT_TRUE(cas.Add(Make("T", 2, 5)).ok());
  ASSERT_TRUE(cas.Add(Make("T", 5, 9)).ok());
  auto covered = cas.SelectCovered("T", 0, 5);
  ASSERT_EQ(covered.size(), 2u);
  EXPECT_EQ(covered[0]->end, 3u);
  EXPECT_EQ(covered[1]->end, 5u);
}

TEST(CasTest, Metadata) {
  Cas cas("doc");
  EXPECT_FALSE(cas.HasMeta("language"));
  cas.SetMeta("language", "de");
  EXPECT_TRUE(cas.HasMeta("language"));
  EXPECT_EQ(cas.GetMeta("language"), "de");
  EXPECT_EQ(cas.GetMeta("missing"), "");
}

TEST(CasTest, SetDocumentResetsState) {
  Cas cas("first");
  ASSERT_TRUE(cas.Add(Make("T", 0, 5)).ok());
  cas.SetMeta("k", "v");
  cas.set_document("second document");
  EXPECT_EQ(cas.CountType("T"), 0u);
  EXPECT_FALSE(cas.HasMeta("k"));
  EXPECT_EQ(cas.document(), "second document");
}

TEST(CasTest, FeatureAccessors) {
  Annotation a = Make("T", 0, 0);
  a.string_features["s"] = "val";
  a.int_features["i"] = 42;
  EXPECT_EQ(a.GetString("s"), "val");
  EXPECT_EQ(a.GetInt("i"), 42);
  EXPECT_EQ(a.GetString("missing"), "");
  EXPECT_EQ(a.GetInt("missing"), 0);
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

class CountingAnnotator : public Annotator {
 public:
  CountingAnnotator(std::string name, int* counter, Status result = Status::OK())
      : name_(std::move(name)), counter_(counter), result_(result) {}

  std::string name() const override { return name_; }
  Status Process(Cas*) override {
    ++*counter_;
    return result_;
  }

 private:
  std::string name_;
  int* counter_;
  Status result_;
};

TEST(PipelineTest, RunsStagesInOrder) {
  int a = 0;
  int b = 0;
  Pipeline pipeline;
  pipeline.Add(std::make_unique<CountingAnnotator>("A", &a))
      .Add(std::make_unique<CountingAnnotator>("B", &b));
  Cas cas("doc");
  ASSERT_TRUE(pipeline.Process(&cas).ok());
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(pipeline.Describe(), "A -> B");
}

TEST(PipelineTest, StopsOnFirstFailure) {
  int a = 0;
  int b = 0;
  Pipeline pipeline;
  pipeline
      .Add(std::make_unique<CountingAnnotator>("A", &a,
                                               Status::Invalid("boom")))
      .Add(std::make_unique<CountingAnnotator>("B", &b));
  Cas cas("doc");
  Status st = pipeline.Process(&cas);
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("'A'"), std::string::npos);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
}

TEST(PipelineTest, TimingsAccumulate) {
  int a = 0;
  Pipeline pipeline;
  pipeline.Add(std::make_unique<CountingAnnotator>("A", &a));
  Cas cas("doc");
  ASSERT_TRUE(pipeline.Process(&cas).ok());
  ASSERT_TRUE(pipeline.Process(&cas).ok());
  ASSERT_EQ(pipeline.timings().size(), 1u);
  EXPECT_EQ(pipeline.timings()[0].documents, 2u);
  EXPECT_GE(pipeline.timings()[0].seconds, 0.0);
  pipeline.ResetTimings();
  EXPECT_EQ(pipeline.timings()[0].documents, 0u);
}

// ---------------------------------------------------------------------------
// Standard annotators
// ---------------------------------------------------------------------------

TEST(TokenizerAnnotatorTest, EmitsTokenAnnotations) {
  Cas cas("Lüfter defekt, durchgeschmort.");
  TokenizerAnnotator annotator;
  ASSERT_TRUE(annotator.Process(&cas).ok());
  auto tokens = cas.Select(types::kToken);
  ASSERT_EQ(tokens.size(), 5u);  // 3 words + comma + period.
  EXPECT_EQ(tokens[0]->GetString(types::kFeatureNorm), "luefter");
  EXPECT_EQ(tokens[0]->GetString(types::kFeatureKind), "word");
  EXPECT_EQ(tokens[2]->GetString(types::kFeatureKind), "punct");
}

TEST(LanguageAnnotatorTest, SetsLanguageMetadata) {
  Cas cas("Der Schlauch ist undicht und die Pumpe funktioniert nicht mehr");
  LanguageAnnotator annotator;
  ASSERT_TRUE(annotator.Process(&cas).ok());
  EXPECT_EQ(cas.GetMeta(types::kMetaLanguage), "de");
}

TEST(StopwordAnnotatorTest, FlagsStopwords) {
  Cas cas("the radio turns off");
  Pipeline pipeline;
  pipeline.Add(std::make_unique<TokenizerAnnotator>())
      .Add(std::make_unique<StopwordAnnotator>());
  ASSERT_TRUE(pipeline.Process(&cas).ok());
  auto tokens = cas.Select(types::kToken);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0]->GetInt(types::kFeatureStopword), 1);  // "the"
  EXPECT_EQ(tokens[1]->GetInt(types::kFeatureStopword), 0);  // "radio"
}

TEST(FullPreprocessingPipelineTest, EndToEnd) {
  Cas cas("Kleint says taht radio turns on and off by itself. "
          "Electiral smell, crackling sound.");
  Pipeline pipeline;
  pipeline.Add(std::make_unique<TokenizerAnnotator>())
      .Add(std::make_unique<LanguageAnnotator>())
      .Add(std::make_unique<StopwordAnnotator>());
  ASSERT_TRUE(pipeline.Process(&cas).ok());
  EXPECT_GT(cas.CountType(types::kToken), 10u);
  EXPECT_EQ(cas.GetMeta(types::kMetaLanguage), "en");
}

}  // namespace
}  // namespace qatk::cas
