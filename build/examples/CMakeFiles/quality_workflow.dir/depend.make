# Empty dependencies file for quality_workflow.
# This may be replaced when dependencies are built.
