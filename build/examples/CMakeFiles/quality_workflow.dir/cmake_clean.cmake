file(REMOVE_RECURSE
  "CMakeFiles/quality_workflow.dir/quality_workflow.cpp.o"
  "CMakeFiles/quality_workflow.dir/quality_workflow.cpp.o.d"
  "quality_workflow"
  "quality_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
