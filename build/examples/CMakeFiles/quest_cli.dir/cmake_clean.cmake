file(REMOVE_RECURSE
  "CMakeFiles/quest_cli.dir/quest_cli.cpp.o"
  "CMakeFiles/quest_cli.dir/quest_cli.cpp.o.d"
  "quest_cli"
  "quest_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
