# Empty compiler generated dependencies file for quest_cli.
# This may be replaced when dependencies are built.
