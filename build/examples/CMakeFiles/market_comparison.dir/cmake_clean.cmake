file(REMOVE_RECURSE
  "CMakeFiles/market_comparison.dir/market_comparison.cpp.o"
  "CMakeFiles/market_comparison.dir/market_comparison.cpp.o.d"
  "market_comparison"
  "market_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
