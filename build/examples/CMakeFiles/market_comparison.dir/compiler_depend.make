# Empty compiler generated dependencies file for market_comparison.
# This may be replaced when dependencies are built.
