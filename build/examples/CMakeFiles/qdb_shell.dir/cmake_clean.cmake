file(REMOVE_RECURSE
  "CMakeFiles/qdb_shell.dir/qdb_shell.cpp.o"
  "CMakeFiles/qdb_shell.dir/qdb_shell.cpp.o.d"
  "qdb_shell"
  "qdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
