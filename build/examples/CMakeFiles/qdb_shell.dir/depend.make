# Empty dependencies file for qdb_shell.
# This may be replaced when dependencies are built.
