# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_value_test[1]_include.cmake")
include("/root/repo/build/tests/storage_heap_test[1]_include.cmake")
include("/root/repo/build/tests/storage_bptree_test[1]_include.cmake")
include("/root/repo/build/tests/storage_database_test[1]_include.cmake")
include("/root/repo/build/tests/storage_sql_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/cas_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/quest_test[1]_include.cmake")
include("/root/repo/build/tests/stemmer_test[1]_include.cmake")
include("/root/repo/build/tests/extender_test[1]_include.cmake")
include("/root/repo/build/tests/storage_wal_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/cas_xmi_test[1]_include.cmake")
include("/root/repo/build/tests/cas_testing_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_io_test[1]_include.cmake")
