file(REMOVE_RECURSE
  "CMakeFiles/storage_heap_test.dir/storage_heap_test.cc.o"
  "CMakeFiles/storage_heap_test.dir/storage_heap_test.cc.o.d"
  "storage_heap_test"
  "storage_heap_test.pdb"
  "storage_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
