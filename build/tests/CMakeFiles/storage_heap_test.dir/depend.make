# Empty dependencies file for storage_heap_test.
# This may be replaced when dependencies are built.
