file(REMOVE_RECURSE
  "CMakeFiles/extender_test.dir/extender_test.cc.o"
  "CMakeFiles/extender_test.dir/extender_test.cc.o.d"
  "extender_test"
  "extender_test.pdb"
  "extender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
