# Empty compiler generated dependencies file for extender_test.
# This may be replaced when dependencies are built.
