# Empty compiler generated dependencies file for cas_xmi_test.
# This may be replaced when dependencies are built.
