file(REMOVE_RECURSE
  "CMakeFiles/cas_xmi_test.dir/cas_xmi_test.cc.o"
  "CMakeFiles/cas_xmi_test.dir/cas_xmi_test.cc.o.d"
  "cas_xmi_test"
  "cas_xmi_test.pdb"
  "cas_xmi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cas_xmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
