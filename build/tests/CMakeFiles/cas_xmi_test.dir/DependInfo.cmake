
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cas_xmi_test.cc" "tests/CMakeFiles/cas_xmi_test.dir/cas_xmi_test.cc.o" "gcc" "tests/CMakeFiles/cas_xmi_test.dir/cas_xmi_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cas/CMakeFiles/qatk_cas.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/qatk_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qatk_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qatk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
