file(REMOVE_RECURSE
  "CMakeFiles/storage_database_test.dir/storage_database_test.cc.o"
  "CMakeFiles/storage_database_test.dir/storage_database_test.cc.o.d"
  "storage_database_test"
  "storage_database_test.pdb"
  "storage_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
