# Empty compiler generated dependencies file for storage_sql_test.
# This may be replaced when dependencies are built.
