file(REMOVE_RECURSE
  "CMakeFiles/storage_sql_test.dir/storage_sql_test.cc.o"
  "CMakeFiles/storage_sql_test.dir/storage_sql_test.cc.o.d"
  "storage_sql_test"
  "storage_sql_test.pdb"
  "storage_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
