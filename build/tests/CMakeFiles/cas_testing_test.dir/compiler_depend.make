# Empty compiler generated dependencies file for cas_testing_test.
# This may be replaced when dependencies are built.
