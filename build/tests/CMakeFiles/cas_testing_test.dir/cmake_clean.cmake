file(REMOVE_RECURSE
  "CMakeFiles/cas_testing_test.dir/cas_testing_test.cc.o"
  "CMakeFiles/cas_testing_test.dir/cas_testing_test.cc.o.d"
  "cas_testing_test"
  "cas_testing_test.pdb"
  "cas_testing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cas_testing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
