file(REMOVE_RECURSE
  "CMakeFiles/quest_test.dir/quest_test.cc.o"
  "CMakeFiles/quest_test.dir/quest_test.cc.o.d"
  "quest_test"
  "quest_test.pdb"
  "quest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
