file(REMOVE_RECURSE
  "libqatk_common.a"
)
