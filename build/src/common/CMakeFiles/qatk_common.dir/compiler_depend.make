# Empty compiler generated dependencies file for qatk_common.
# This may be replaced when dependencies are built.
