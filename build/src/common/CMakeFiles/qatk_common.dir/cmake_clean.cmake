file(REMOVE_RECURSE
  "CMakeFiles/qatk_common.dir/csv.cc.o"
  "CMakeFiles/qatk_common.dir/csv.cc.o.d"
  "CMakeFiles/qatk_common.dir/rng.cc.o"
  "CMakeFiles/qatk_common.dir/rng.cc.o.d"
  "CMakeFiles/qatk_common.dir/status.cc.o"
  "CMakeFiles/qatk_common.dir/status.cc.o.d"
  "CMakeFiles/qatk_common.dir/strutil.cc.o"
  "CMakeFiles/qatk_common.dir/strutil.cc.o.d"
  "CMakeFiles/qatk_common.dir/xml.cc.o"
  "CMakeFiles/qatk_common.dir/xml.cc.o.d"
  "libqatk_common.a"
  "libqatk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
