file(REMOVE_RECURSE
  "CMakeFiles/qatk_taxonomy.dir/concept_annotator.cc.o"
  "CMakeFiles/qatk_taxonomy.dir/concept_annotator.cc.o.d"
  "CMakeFiles/qatk_taxonomy.dir/extender.cc.o"
  "CMakeFiles/qatk_taxonomy.dir/extender.cc.o.d"
  "CMakeFiles/qatk_taxonomy.dir/taxonomy.cc.o"
  "CMakeFiles/qatk_taxonomy.dir/taxonomy.cc.o.d"
  "CMakeFiles/qatk_taxonomy.dir/trie.cc.o"
  "CMakeFiles/qatk_taxonomy.dir/trie.cc.o.d"
  "CMakeFiles/qatk_taxonomy.dir/xml.cc.o"
  "CMakeFiles/qatk_taxonomy.dir/xml.cc.o.d"
  "libqatk_taxonomy.a"
  "libqatk_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
