# Empty dependencies file for qatk_taxonomy.
# This may be replaced when dependencies are built.
