file(REMOVE_RECURSE
  "libqatk_taxonomy.a"
)
