
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxonomy/concept_annotator.cc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/concept_annotator.cc.o" "gcc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/concept_annotator.cc.o.d"
  "/root/repo/src/taxonomy/extender.cc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/extender.cc.o" "gcc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/extender.cc.o.d"
  "/root/repo/src/taxonomy/taxonomy.cc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/taxonomy.cc.o" "gcc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/taxonomy.cc.o.d"
  "/root/repo/src/taxonomy/trie.cc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/trie.cc.o" "gcc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/trie.cc.o.d"
  "/root/repo/src/taxonomy/xml.cc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/xml.cc.o" "gcc" "src/taxonomy/CMakeFiles/qatk_taxonomy.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qatk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qatk_text.dir/DependInfo.cmake"
  "/root/repo/build/src/cas/CMakeFiles/qatk_cas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
