# Empty compiler generated dependencies file for qatk_text.
# This may be replaced when dependencies are built.
