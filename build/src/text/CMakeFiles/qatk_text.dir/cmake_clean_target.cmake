file(REMOVE_RECURSE
  "libqatk_text.a"
)
