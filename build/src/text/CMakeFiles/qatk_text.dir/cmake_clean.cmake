file(REMOVE_RECURSE
  "CMakeFiles/qatk_text.dir/language.cc.o"
  "CMakeFiles/qatk_text.dir/language.cc.o.d"
  "CMakeFiles/qatk_text.dir/stemmer.cc.o"
  "CMakeFiles/qatk_text.dir/stemmer.cc.o.d"
  "CMakeFiles/qatk_text.dir/stopwords.cc.o"
  "CMakeFiles/qatk_text.dir/stopwords.cc.o.d"
  "CMakeFiles/qatk_text.dir/tokenizer.cc.o"
  "CMakeFiles/qatk_text.dir/tokenizer.cc.o.d"
  "libqatk_text.a"
  "libqatk_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
