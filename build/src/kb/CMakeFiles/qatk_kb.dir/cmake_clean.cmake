file(REMOVE_RECURSE
  "CMakeFiles/qatk_kb.dir/corpus_io.cc.o"
  "CMakeFiles/qatk_kb.dir/corpus_io.cc.o.d"
  "CMakeFiles/qatk_kb.dir/data_bundle.cc.o"
  "CMakeFiles/qatk_kb.dir/data_bundle.cc.o.d"
  "CMakeFiles/qatk_kb.dir/features.cc.o"
  "CMakeFiles/qatk_kb.dir/features.cc.o.d"
  "CMakeFiles/qatk_kb.dir/kb_store.cc.o"
  "CMakeFiles/qatk_kb.dir/kb_store.cc.o.d"
  "CMakeFiles/qatk_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/qatk_kb.dir/knowledge_base.cc.o.d"
  "libqatk_kb.a"
  "libqatk_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
