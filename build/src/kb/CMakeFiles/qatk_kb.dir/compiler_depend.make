# Empty compiler generated dependencies file for qatk_kb.
# This may be replaced when dependencies are built.
