file(REMOVE_RECURSE
  "libqatk_kb.a"
)
