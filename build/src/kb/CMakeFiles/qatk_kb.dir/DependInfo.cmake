
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/corpus_io.cc" "src/kb/CMakeFiles/qatk_kb.dir/corpus_io.cc.o" "gcc" "src/kb/CMakeFiles/qatk_kb.dir/corpus_io.cc.o.d"
  "/root/repo/src/kb/data_bundle.cc" "src/kb/CMakeFiles/qatk_kb.dir/data_bundle.cc.o" "gcc" "src/kb/CMakeFiles/qatk_kb.dir/data_bundle.cc.o.d"
  "/root/repo/src/kb/features.cc" "src/kb/CMakeFiles/qatk_kb.dir/features.cc.o" "gcc" "src/kb/CMakeFiles/qatk_kb.dir/features.cc.o.d"
  "/root/repo/src/kb/kb_store.cc" "src/kb/CMakeFiles/qatk_kb.dir/kb_store.cc.o" "gcc" "src/kb/CMakeFiles/qatk_kb.dir/kb_store.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/kb/CMakeFiles/qatk_kb.dir/knowledge_base.cc.o" "gcc" "src/kb/CMakeFiles/qatk_kb.dir/knowledge_base.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qatk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qatk_text.dir/DependInfo.cmake"
  "/root/repo/build/src/cas/CMakeFiles/qatk_cas.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/qatk_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qatk_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
