file(REMOVE_RECURSE
  "CMakeFiles/qatk_eval.dir/evaluator.cc.o"
  "CMakeFiles/qatk_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/qatk_eval.dir/folds.cc.o"
  "CMakeFiles/qatk_eval.dir/folds.cc.o.d"
  "CMakeFiles/qatk_eval.dir/metrics.cc.o"
  "CMakeFiles/qatk_eval.dir/metrics.cc.o.d"
  "libqatk_eval.a"
  "libqatk_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
