file(REMOVE_RECURSE
  "libqatk_eval.a"
)
