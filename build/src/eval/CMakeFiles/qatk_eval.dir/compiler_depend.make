# Empty compiler generated dependencies file for qatk_eval.
# This may be replaced when dependencies are built.
