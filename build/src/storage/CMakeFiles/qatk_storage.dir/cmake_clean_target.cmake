file(REMOVE_RECURSE
  "libqatk_storage.a"
)
