
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bptree.cc" "src/storage/CMakeFiles/qatk_storage.dir/bptree.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/bptree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/qatk_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/qatk_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/database.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/storage/CMakeFiles/qatk_storage.dir/disk_manager.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/disk_manager.cc.o.d"
  "/root/repo/src/storage/executor.cc" "src/storage/CMakeFiles/qatk_storage.dir/executor.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/executor.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/storage/CMakeFiles/qatk_storage.dir/heap_table.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/heap_table.cc.o.d"
  "/root/repo/src/storage/predicate.cc" "src/storage/CMakeFiles/qatk_storage.dir/predicate.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/predicate.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/qatk_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/sql.cc" "src/storage/CMakeFiles/qatk_storage.dir/sql.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/sql.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/qatk_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/tuple.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/storage/CMakeFiles/qatk_storage.dir/value.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/value.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/qatk_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/qatk_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qatk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
