# Empty compiler generated dependencies file for qatk_storage.
# This may be replaced when dependencies are built.
