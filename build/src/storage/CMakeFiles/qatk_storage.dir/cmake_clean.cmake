file(REMOVE_RECURSE
  "CMakeFiles/qatk_storage.dir/bptree.cc.o"
  "CMakeFiles/qatk_storage.dir/bptree.cc.o.d"
  "CMakeFiles/qatk_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/qatk_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/qatk_storage.dir/database.cc.o"
  "CMakeFiles/qatk_storage.dir/database.cc.o.d"
  "CMakeFiles/qatk_storage.dir/disk_manager.cc.o"
  "CMakeFiles/qatk_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/qatk_storage.dir/executor.cc.o"
  "CMakeFiles/qatk_storage.dir/executor.cc.o.d"
  "CMakeFiles/qatk_storage.dir/heap_table.cc.o"
  "CMakeFiles/qatk_storage.dir/heap_table.cc.o.d"
  "CMakeFiles/qatk_storage.dir/predicate.cc.o"
  "CMakeFiles/qatk_storage.dir/predicate.cc.o.d"
  "CMakeFiles/qatk_storage.dir/schema.cc.o"
  "CMakeFiles/qatk_storage.dir/schema.cc.o.d"
  "CMakeFiles/qatk_storage.dir/sql.cc.o"
  "CMakeFiles/qatk_storage.dir/sql.cc.o.d"
  "CMakeFiles/qatk_storage.dir/tuple.cc.o"
  "CMakeFiles/qatk_storage.dir/tuple.cc.o.d"
  "CMakeFiles/qatk_storage.dir/value.cc.o"
  "CMakeFiles/qatk_storage.dir/value.cc.o.d"
  "CMakeFiles/qatk_storage.dir/wal.cc.o"
  "CMakeFiles/qatk_storage.dir/wal.cc.o.d"
  "libqatk_storage.a"
  "libqatk_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
