file(REMOVE_RECURSE
  "libqatk_cas.a"
)
