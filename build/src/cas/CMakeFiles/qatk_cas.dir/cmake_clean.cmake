file(REMOVE_RECURSE
  "CMakeFiles/qatk_cas.dir/annotators.cc.o"
  "CMakeFiles/qatk_cas.dir/annotators.cc.o.d"
  "CMakeFiles/qatk_cas.dir/cas.cc.o"
  "CMakeFiles/qatk_cas.dir/cas.cc.o.d"
  "CMakeFiles/qatk_cas.dir/pipeline.cc.o"
  "CMakeFiles/qatk_cas.dir/pipeline.cc.o.d"
  "CMakeFiles/qatk_cas.dir/xmi.cc.o"
  "CMakeFiles/qatk_cas.dir/xmi.cc.o.d"
  "libqatk_cas.a"
  "libqatk_cas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_cas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
