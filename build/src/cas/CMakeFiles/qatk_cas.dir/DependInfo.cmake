
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cas/annotators.cc" "src/cas/CMakeFiles/qatk_cas.dir/annotators.cc.o" "gcc" "src/cas/CMakeFiles/qatk_cas.dir/annotators.cc.o.d"
  "/root/repo/src/cas/cas.cc" "src/cas/CMakeFiles/qatk_cas.dir/cas.cc.o" "gcc" "src/cas/CMakeFiles/qatk_cas.dir/cas.cc.o.d"
  "/root/repo/src/cas/pipeline.cc" "src/cas/CMakeFiles/qatk_cas.dir/pipeline.cc.o" "gcc" "src/cas/CMakeFiles/qatk_cas.dir/pipeline.cc.o.d"
  "/root/repo/src/cas/xmi.cc" "src/cas/CMakeFiles/qatk_cas.dir/xmi.cc.o" "gcc" "src/cas/CMakeFiles/qatk_cas.dir/xmi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qatk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qatk_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
