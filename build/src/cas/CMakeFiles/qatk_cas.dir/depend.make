# Empty dependencies file for qatk_cas.
# This may be replaced when dependencies are built.
