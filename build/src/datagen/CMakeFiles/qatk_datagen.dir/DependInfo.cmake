
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/nhtsa.cc" "src/datagen/CMakeFiles/qatk_datagen.dir/nhtsa.cc.o" "gcc" "src/datagen/CMakeFiles/qatk_datagen.dir/nhtsa.cc.o.d"
  "/root/repo/src/datagen/noise.cc" "src/datagen/CMakeFiles/qatk_datagen.dir/noise.cc.o" "gcc" "src/datagen/CMakeFiles/qatk_datagen.dir/noise.cc.o.d"
  "/root/repo/src/datagen/oem.cc" "src/datagen/CMakeFiles/qatk_datagen.dir/oem.cc.o" "gcc" "src/datagen/CMakeFiles/qatk_datagen.dir/oem.cc.o.d"
  "/root/repo/src/datagen/wordgen.cc" "src/datagen/CMakeFiles/qatk_datagen.dir/wordgen.cc.o" "gcc" "src/datagen/CMakeFiles/qatk_datagen.dir/wordgen.cc.o.d"
  "/root/repo/src/datagen/world.cc" "src/datagen/CMakeFiles/qatk_datagen.dir/world.cc.o" "gcc" "src/datagen/CMakeFiles/qatk_datagen.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qatk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/qatk_text.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/qatk_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/qatk_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/cas/CMakeFiles/qatk_cas.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/qatk_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
