file(REMOVE_RECURSE
  "libqatk_datagen.a"
)
