# Empty compiler generated dependencies file for qatk_datagen.
# This may be replaced when dependencies are built.
