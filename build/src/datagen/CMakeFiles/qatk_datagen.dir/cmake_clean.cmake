file(REMOVE_RECURSE
  "CMakeFiles/qatk_datagen.dir/nhtsa.cc.o"
  "CMakeFiles/qatk_datagen.dir/nhtsa.cc.o.d"
  "CMakeFiles/qatk_datagen.dir/noise.cc.o"
  "CMakeFiles/qatk_datagen.dir/noise.cc.o.d"
  "CMakeFiles/qatk_datagen.dir/oem.cc.o"
  "CMakeFiles/qatk_datagen.dir/oem.cc.o.d"
  "CMakeFiles/qatk_datagen.dir/wordgen.cc.o"
  "CMakeFiles/qatk_datagen.dir/wordgen.cc.o.d"
  "CMakeFiles/qatk_datagen.dir/world.cc.o"
  "CMakeFiles/qatk_datagen.dir/world.cc.o.d"
  "libqatk_datagen.a"
  "libqatk_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
