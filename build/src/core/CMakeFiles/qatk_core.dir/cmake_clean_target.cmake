file(REMOVE_RECURSE
  "libqatk_core.a"
)
