# Empty dependencies file for qatk_core.
# This may be replaced when dependencies are built.
