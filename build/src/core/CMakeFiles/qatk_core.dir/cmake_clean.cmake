file(REMOVE_RECURSE
  "CMakeFiles/qatk_core.dir/baselines.cc.o"
  "CMakeFiles/qatk_core.dir/baselines.cc.o.d"
  "CMakeFiles/qatk_core.dir/classifier.cc.o"
  "CMakeFiles/qatk_core.dir/classifier.cc.o.d"
  "CMakeFiles/qatk_core.dir/similarity.cc.o"
  "CMakeFiles/qatk_core.dir/similarity.cc.o.d"
  "libqatk_core.a"
  "libqatk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
