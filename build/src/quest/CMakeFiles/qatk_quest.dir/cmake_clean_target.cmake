file(REMOVE_RECURSE
  "libqatk_quest.a"
)
