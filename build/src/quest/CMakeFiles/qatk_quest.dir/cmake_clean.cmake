file(REMOVE_RECURSE
  "CMakeFiles/qatk_quest.dir/comparison.cc.o"
  "CMakeFiles/qatk_quest.dir/comparison.cc.o.d"
  "CMakeFiles/qatk_quest.dir/recommendation_service.cc.o"
  "CMakeFiles/qatk_quest.dir/recommendation_service.cc.o.d"
  "libqatk_quest.a"
  "libqatk_quest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qatk_quest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
