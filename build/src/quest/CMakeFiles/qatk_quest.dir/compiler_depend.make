# Empty compiler generated dependencies file for qatk_quest.
# This may be replaced when dependencies are built.
