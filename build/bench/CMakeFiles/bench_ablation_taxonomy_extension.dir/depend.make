# Empty dependencies file for bench_ablation_taxonomy_extension.
# This may be replaced when dependencies are built.
