file(REMOVE_RECURSE
  "CMakeFiles/bench_annotator_coverage.dir/bench_annotator_coverage.cc.o"
  "CMakeFiles/bench_annotator_coverage.dir/bench_annotator_coverage.cc.o.d"
  "bench_annotator_coverage"
  "bench_annotator_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotator_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
