# Empty dependencies file for bench_fig13_supplier_only.
# This may be replaced when dependencies are built.
