file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_feasibility.dir/bench_runtime_feasibility.cc.o"
  "CMakeFiles/bench_runtime_feasibility.dir/bench_runtime_feasibility.cc.o.d"
  "bench_runtime_feasibility"
  "bench_runtime_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
