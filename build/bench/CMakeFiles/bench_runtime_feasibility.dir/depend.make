# Empty dependencies file for bench_runtime_feasibility.
# This may be replaced when dependencies are built.
