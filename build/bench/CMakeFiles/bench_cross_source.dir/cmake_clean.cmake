file(REMOVE_RECURSE
  "CMakeFiles/bench_cross_source.dir/bench_cross_source.cc.o"
  "CMakeFiles/bench_cross_source.dir/bench_cross_source.cc.o.d"
  "bench_cross_source"
  "bench_cross_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cross_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
