# Empty compiler generated dependencies file for bench_cross_source.
# This may be replaced when dependencies are built.
