file(REMOVE_RECURSE
  "CMakeFiles/bench_expert_effort.dir/bench_expert_effort.cc.o"
  "CMakeFiles/bench_expert_effort.dir/bench_expert_effort.cc.o.d"
  "bench_expert_effort"
  "bench_expert_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expert_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
