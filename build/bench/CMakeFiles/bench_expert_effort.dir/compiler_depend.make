# Empty compiler generated dependencies file for bench_expert_effort.
# This may be replaced when dependencies are built.
