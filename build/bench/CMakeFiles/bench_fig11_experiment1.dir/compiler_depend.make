# Empty compiler generated dependencies file for bench_fig11_experiment1.
# This may be replaced when dependencies are built.
