file(REMOVE_RECURSE
  "CMakeFiles/bench_corpus_profile.dir/bench_corpus_profile.cc.o"
  "CMakeFiles/bench_corpus_profile.dir/bench_corpus_profile.cc.o.d"
  "bench_corpus_profile"
  "bench_corpus_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corpus_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
