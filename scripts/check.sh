#!/usr/bin/env bash
# CI check: build and run the tier-1 test suite under sanitizers, then a
# Release-mode perf smoke.
#
# Stages, in sequence:
#   1. address,undefined  — memory errors, UB, leaks
#   2. thread             — data races in the serving / thread-pool paths
#   3. perf               — Release build of bench_knn_throughput --quick;
#                           proves indexed == brute rankings bit-for-bit and
#                           fails if the frozen index is slower than brute
#                           force. Writes BENCH_knn.json at the repo root.
#
# Each sanitizer pass gets its own build tree under build-san/ so the
# sanitizer runtimes never mix; the perf stage uses build-perf/. Usage:
#   scripts/check.sh            # all stages
#   scripts/check.sh address,undefined
#   scripts/check.sh thread
#   scripts/check.sh perf       # perf smoke only
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
STAGES=("${1:-address,undefined}")
if [[ $# -eq 0 ]]; then
  STAGES=("address,undefined" "thread" "perf")
fi

for STAGE in "${STAGES[@]}"; do
  if [[ "${STAGE}" == "perf" ]]; then
    BUILD_DIR="build-perf"
    echo "=== perf smoke: bench_knn_throughput --quick (build: ${BUILD_DIR}) ==="
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_knn_throughput
    # Exits 2 if indexed rankings diverge from brute force, 1 if the
    # indexed path is slower; either fails the check via errexit.
    "${BUILD_DIR}/bench/bench_knn_throughput" --quick --out=BENCH_knn.json
    continue
  fi
  # A comma-separated sanitizer list is a valid -fsanitize= value but not a
  # valid directory name; flatten it for the build tree.
  BUILD_DIR="build-san/${STAGE//,/+}"
  echo "=== sanitizer pass: ${STAGE} (build: ${BUILD_DIR}) ==="
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DQATK_SANITIZE="${STAGE}" >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
done

echo "=== all check stages clean ==="
