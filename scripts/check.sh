#!/usr/bin/env bash
# CI check: build and run the tier-1 test suite under sanitizers, then a
# Release-mode perf smoke.
#
# Stages, in sequence:
#   1. address,undefined  — memory errors, UB, leaks
#   2. thread             — data races in the serving / thread-pool paths
#   3. perf               — the pruning equivalence battery (pruning_test:
#                           adversarial corpora, bound admissibility with
#                           mutation checks) under ASan+UBSan, then a
#                           Release build of bench_knn_throughput --quick;
#                           proves brute == pruned == unpruned rankings
#                           bit-for-bit, fails if the frozen index is
#                           slower than brute force, if the pruned path
#                           falls behind the unpruned path, or if the
#                           k-selectivity sweep never skips a posting.
#                           Writes BENCH_knn.json at the repo root.
#   4. serve              — Release build of the epoll serving stack:
#                           bench_serving_load --quick in-process (wire
#                           responses must be bit-identical to direct
#                           Recommend calls; shed/drain/fault gates), then
#                           a real qatk_serve process on an ephemeral port,
#                           the bench replayed against it over TCP, and a
#                           SIGTERM drain that must exit 0. Writes
#                           BENCH_serving.json at the repo root.
#   5. obs                — observability hardening: the obs / fuzz /
#                           golden-frame test binaries rerun under both
#                           ASan+UBSan and TSan (reusing the build-san/
#                           trees), then an overhead smoke comparing
#                           bench_knn_throughput between the normal
#                           Release tree and one compiled with
#                           -DQATK_NO_METRICS=ON: metrics-enabled
#                           throughput must stay within 95% of the
#                           compiled-out build.
#   6. durability         — crash-safety torture under ASan+UBSan: the
#                           service_durability_test binary (torn tails,
#                           CRC corruption, checkpoint-window crashes)
#                           plus bench_crash_recovery with 200 storage
#                           and 1000 service schedules. The bench's
#                           recovery_replay gate fails the stage on any
#                           recovery mismatch or a replay-free sweep.
#                           Writes BENCH_crash.json at the repo root.
#   7. cluster            — sharded serving end-to-end: Release build of
#                           bench_cluster_scaling --quick in-process
#                           (cluster responses over 1..4 hash shards plus
#                           a range cross-check must be bit-identical to
#                           single-node; the 1->4 shard throughput table
#                           gates on >= 4-core hosts, SKIPPED elsewhere),
#                           then a real 3-shard qatk_cluster process tree
#                           on ephemeral ports, the equivalence replay
#                           against its front end over TCP, and a SIGTERM
#                           cluster drain that must exit 0. Writes
#                           BENCH_cluster.json at the repo root.
#   8. scaling            — multi-core scaling gates: full (non-quick)
#                           1->4 thread tables from bench_knn_throughput
#                           (monotonically non-decreasing) and
#                           bench_serving_load (>= 2.4x 1->4, i.e. 0.6x
#                           of linear). Both benches enforce their gates
#                           internally when the host has >= 4 cores; on
#                           smaller machines the stage prints a SKIPPED
#                           notice and succeeds, so laptops and small CI
#                           runners stay green without masking a real
#                           regression on serving-class hardware.
#
# Each sanitizer pass gets its own build tree under build-san/ so the
# sanitizer runtimes never mix; the perf and serve stages share
# build-perf/. Usage:
#   scripts/check.sh            # all stages
#   scripts/check.sh address,undefined
#   scripts/check.sh thread
#   scripts/check.sh perf       # perf smoke only
#   scripts/check.sh serve      # serving stack end-to-end only
#   scripts/check.sh obs        # observability tests + overhead smoke
#   scripts/check.sh durability # crash torture under ASan+UBSan
#   scripts/check.sh cluster    # sharded scatter-gather serving end-to-end
#   scripts/check.sh scaling    # 1->4 multi-core scaling gates
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
STAGES=("${1:-address,undefined}")
if [[ $# -eq 0 ]]; then
  STAGES=("address,undefined" "thread" "perf" "serve" "obs" "durability" "cluster" "scaling")
fi

# Pulls the first indexed-path qps out of a (pretty-printed) BENCH_knn
# JSON: the "qps" line immediately inside the first "indexed" object.
knn_qps() {
  awk '/"indexed": \{/ { grab = 1; next }
       grab && /"qps":/ { gsub(/[^0-9.]/, ""); print; exit }' "$1"
}

for STAGE in "${STAGES[@]}"; do
  if [[ "${STAGE}" == "perf" ]]; then
    # The pruning equivalence battery rides the perf stage under
    # ASan+UBSan: the pruned scorer's skip decisions read freeze-time
    # posting blocks and bound tables, exactly the kind of indexing an
    # off-by-one corrupts silently long before it corrupts visibly.
    SAN="address,undefined"
    SAN_DIR="build-san/${SAN//,/+}"
    echo "=== pruning equivalence battery under ${SAN} (build: ${SAN_DIR}) ==="
    cmake -B "${SAN_DIR}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DQATK_SANITIZE="${SAN}" >/dev/null
    cmake --build "${SAN_DIR}" -j "${JOBS}" --target pruning_test
    "${SAN_DIR}/tests/pruning_test"
    BUILD_DIR="build-perf"
    echo "=== perf smoke: bench_knn_throughput --quick (build: ${BUILD_DIR}) ==="
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_knn_throughput
    # Exits 2 if any ranking (brute / pruned / unpruned, any k) diverges,
    # 1 if the indexed path is slower than brute, the pruned path falls
    # behind unpruned, or pruning never skips a posting across the
    # k-selectivity sweep; any of these fails the check via errexit.
    "${BUILD_DIR}/bench/bench_knn_throughput" --quick --out=BENCH_knn.json
    continue
  fi
  if [[ "${STAGE}" == "serve" ]]; then
    BUILD_DIR="build-perf"
    echo "=== serve smoke: bench_serving_load + qatk_serve drain (build: ${BUILD_DIR}) ==="
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_serving_load qatk_serve
    # In-process gates: bit-identical wire responses over every held-out
    # bundle, deterministic shedding, zero-drop drain, fault schedules.
    "${BUILD_DIR}/bench/bench_serving_load" --quick --out=BENCH_serving.json
    # Cross-process: a real qatk_serve (independent training of the same
    # deterministic corpus), the bench replayed over TCP, SIGTERM drain.
    PORT_FILE="$(mktemp)"
    rm -f "${PORT_FILE}"
    "${BUILD_DIR}/src/server/qatk_serve" --port=0 --port-file="${PORT_FILE}" &
    SERVE_PID=$!
    for _ in $(seq 1 600); do
      [[ -f "${PORT_FILE}" ]] && break
      sleep 0.5
    done
    if [[ ! -f "${PORT_FILE}" ]]; then
      echo "qatk_serve never wrote its port file" >&2
      kill -9 "${SERVE_PID}" 2>/dev/null || true
      exit 1
    fi
    PORT="$(cat "${PORT_FILE}")"
    rm -f "${PORT_FILE}"
    "${BUILD_DIR}/bench/bench_serving_load" --quick --connect="${PORT}" \
      --out=/dev/null
    kill -TERM "${SERVE_PID}"
    # The graceful drain must finish all in-flight work and exit 0.
    wait "${SERVE_PID}"
    continue
  fi
  if [[ "${STAGE}" == "cluster" ]]; then
    BUILD_DIR="build-perf"
    echo "=== cluster smoke: bench_cluster_scaling + qatk_cluster drain (build: ${BUILD_DIR}) ==="
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" \
      --target bench_cluster_scaling qatk_cluster qatk_serve
    # In-process gates: bit-identical responses at every shard count
    # (hash 1..4 + range cross-check, unknown-part fallbacks included);
    # the shard-scaling table gates itself only on >= 4-core hosts.
    "${BUILD_DIR}/bench/bench_cluster_scaling" --quick --out=BENCH_cluster.json
    # Cross-process: a real 3-shard cluster (launcher forks qatk_serve
    # workers, each training its own slice), the equivalence replay
    # against the front end, then a SIGTERM drain of the whole tree.
    PORT_FILE="$(mktemp)"
    rm -f "${PORT_FILE}"
    "${BUILD_DIR}/src/cluster/qatk_cluster" --port=0 --shards=3 \
      --serve-bin="${BUILD_DIR}/src/server/qatk_serve" \
      --port-file="${PORT_FILE}" &
    CLUSTER_PID=$!
    for _ in $(seq 1 600); do
      [[ -f "${PORT_FILE}" ]] && break
      sleep 0.5
    done
    if [[ ! -f "${PORT_FILE}" ]]; then
      echo "qatk_cluster never wrote its port file" >&2
      kill -9 "${CLUSTER_PID}" 2>/dev/null || true
      exit 1
    fi
    PORT="$(cat "${PORT_FILE}")"
    rm -f "${PORT_FILE}"
    "${BUILD_DIR}/bench/bench_cluster_scaling" --quick --connect="${PORT}" \
      --out=/dev/null
    kill -TERM "${CLUSTER_PID}"
    # The cluster drain must finish in-flight work on the front end and
    # every shard worker, reap all children, and exit 0.
    wait "${CLUSTER_PID}"
    continue
  fi
  if [[ "${STAGE}" == "scaling" ]]; then
    BUILD_DIR="build-perf"
    CORES="$(nproc 2>/dev/null || echo 1)"
    echo "=== scaling gates: 1->4 thread tables (build: ${BUILD_DIR}, ${CORES} cores) ==="
    if [[ "${CORES}" -lt 4 ]]; then
      # The benches would print their own SKIPPED notices too, but a full
      # non-quick run is minutes of wall clock for a result this host
      # cannot gate on — skip the measurement entirely.
      echo "SKIPPED: scaling stage needs >= 4 cores (host has ${CORES});" \
        "run on serving-class hardware to enforce the 1->4 gates" >&2
      continue
    fi
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" \
      --target bench_knn_throughput bench_serving_load
    # Full (non-quick) runs: longer sweeps keep the 1->4 ratios out of
    # jitter range. Each bench enforces its own gate and exits non-zero
    # on a falling curve.
    "${BUILD_DIR}/bench/bench_knn_throughput" --out=BENCH_knn.json
    "${BUILD_DIR}/bench/bench_serving_load" --out=BENCH_serving.json
    continue
  fi
  if [[ "${STAGE}" == "durability" ]]; then
    # Crash torture wants sanitizers, not speed: every recovery path (torn
    # tails, rolled-back appends, snapshot replay) runs under ASan+UBSan so
    # a use-after-free or overflow in a rarely-taken branch can't hide
    # behind a bit-identical fingerprint.
    SAN="address,undefined"
    BUILD_DIR="build-san/${SAN//,/+}"
    echo "=== durability torture under ${SAN} (build: ${BUILD_DIR}) ==="
    cmake -B "${BUILD_DIR}" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DQATK_SANITIZE="${SAN}" >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" \
      --target service_durability_test bench_crash_recovery
    "${BUILD_DIR}/tests/service_durability_test"
    # Full seeded sweep: 200 storage schedules + 1000 service schedules.
    # The bench exits non-zero if any recovery mismatches or if the
    # service sweep never replayed a record (vacuous coverage).
    "${BUILD_DIR}/bench/bench_crash_recovery" \
      --storage=200 --service=1000 --out=BENCH_crash.json
    continue
  fi
  if [[ "${STAGE}" == "obs" ]]; then
    # The observability surface is all about concurrent counters and wire
    # formats, so the dedicated binaries rerun under both sanitizer
    # flavors: ASan+UBSan for the codec/fuzz paths, TSan for the sharded
    # counter and histogram stress tests.
    for SAN in "address,undefined" "thread"; do
      BUILD_DIR="build-san/${SAN//,/+}"
      echo "=== obs tests under ${SAN} (build: ${BUILD_DIR}) ==="
      cmake -B "${BUILD_DIR}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DQATK_SANITIZE="${SAN}" >/dev/null
      cmake --build "${BUILD_DIR}" -j "${JOBS}" \
        --target obs_test fuzz_test server_protocol_test
      "${BUILD_DIR}/tests/obs_test"
      "${BUILD_DIR}/tests/fuzz_test"
      "${BUILD_DIR}/tests/server_protocol_test"
    done
    # Overhead smoke: the metrics-enabled Release build must hold at
    # least 95% of the throughput of a tree with recording compiled out
    # (-DQATK_NO_METRICS=ON). Catches anything creeping into the kNN hot
    # path — a shared cache line, a histogram on the per-candidate loop.
    echo "=== obs overhead smoke: metrics vs QATK_NO_METRICS ==="
    cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build build-perf -j "${JOBS}" --target bench_knn_throughput
    cmake -B build-noobs -S . -DCMAKE_BUILD_TYPE=Release \
      -DQATK_NO_METRICS=ON >/dev/null
    cmake --build build-noobs -j "${JOBS}" --target bench_knn_throughput
    # Best-of-3 per build: single --quick runs jitter ~±10% on a shared
    # host, which would flake a 95% gate; the max over three runs is what
    # each build can actually do.
    QPS_OBS=0
    QPS_NOOBS=0
    for _ in 1 2 3; do
      build-noobs/bench/bench_knn_throughput --quick \
        --out=BENCH_knn_noobs.json
      Q="$(knn_qps BENCH_knn_noobs.json)"
      QPS_NOOBS="$(awk -v a="${Q}" -v b="${QPS_NOOBS}" \
        'BEGIN { print (a + 0 > b + 0) ? a : b }')"
      build-perf/bench/bench_knn_throughput --quick --out=BENCH_knn_obs.json
      Q="$(knn_qps BENCH_knn_obs.json)"
      QPS_OBS="$(awk -v a="${Q}" -v b="${QPS_OBS}" \
        'BEGIN { print (a + 0 > b + 0) ? a : b }')"
    done
    echo "indexed qps: metrics=${QPS_OBS} compiled-out=${QPS_NOOBS}"
    awk -v a="${QPS_OBS}" -v b="${QPS_NOOBS}" 'BEGIN {
      if (a + 0 <= 0 || b + 0 <= 0) { print "missing qps"; exit 1 }
      if (a < 0.95 * b) {
        printf "metrics overhead too high: %.1f < 95%% of %.1f\n", a, b
        exit 1
      }
    }'
    continue
  fi
  # A comma-separated sanitizer list is a valid -fsanitize= value but not a
  # valid directory name; flatten it for the build tree.
  BUILD_DIR="build-san/${STAGE//,/+}"
  echo "=== sanitizer pass: ${STAGE} (build: ${BUILD_DIR}) ==="
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DQATK_SANITIZE="${STAGE}" >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
done

echo "=== all check stages clean ==="
