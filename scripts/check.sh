#!/usr/bin/env bash
# CI check: build and run the tier-1 test suite under sanitizers.
#
# Two passes, in sequence:
#   1. address,undefined  — memory errors, UB, leaks
#   2. thread             — data races in the serving / thread-pool paths
#
# Each pass gets its own build tree under build-san/ so the sanitizer
# runtimes never mix. Usage:
#   scripts/check.sh            # both passes
#   scripts/check.sh address,undefined
#   scripts/check.sh thread
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
PASSES=("${1:-address,undefined}")
if [[ $# -eq 0 ]]; then
  PASSES=("address,undefined" "thread")
fi

for SAN in "${PASSES[@]}"; do
  # A comma-separated sanitizer list is a valid -fsanitize= value but not a
  # valid directory name; flatten it for the build tree.
  BUILD_DIR="build-san/${SAN//,/+}"
  echo "=== sanitizer pass: ${SAN} (build: ${BUILD_DIR}) ==="
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DQATK_SANITIZE="${SAN}" >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
done

echo "=== all sanitizer passes clean ==="
