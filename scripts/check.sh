#!/usr/bin/env bash
# CI check: build and run the tier-1 test suite under sanitizers, then a
# Release-mode perf smoke.
#
# Stages, in sequence:
#   1. address,undefined  — memory errors, UB, leaks
#   2. thread             — data races in the serving / thread-pool paths
#   3. perf               — Release build of bench_knn_throughput --quick;
#                           proves indexed == brute rankings bit-for-bit and
#                           fails if the frozen index is slower than brute
#                           force. Writes BENCH_knn.json at the repo root.
#   4. serve              — Release build of the epoll serving stack:
#                           bench_serving_load --quick in-process (wire
#                           responses must be bit-identical to direct
#                           Recommend calls; shed/drain/fault gates), then
#                           a real qatk_serve process on an ephemeral port,
#                           the bench replayed against it over TCP, and a
#                           SIGTERM drain that must exit 0. Writes
#                           BENCH_serving.json at the repo root.
#
# Each sanitizer pass gets its own build tree under build-san/ so the
# sanitizer runtimes never mix; the perf and serve stages share
# build-perf/. Usage:
#   scripts/check.sh            # all stages
#   scripts/check.sh address,undefined
#   scripts/check.sh thread
#   scripts/check.sh perf       # perf smoke only
#   scripts/check.sh serve      # serving stack end-to-end only
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
STAGES=("${1:-address,undefined}")
if [[ $# -eq 0 ]]; then
  STAGES=("address,undefined" "thread" "perf" "serve")
fi

for STAGE in "${STAGES[@]}"; do
  if [[ "${STAGE}" == "perf" ]]; then
    BUILD_DIR="build-perf"
    echo "=== perf smoke: bench_knn_throughput --quick (build: ${BUILD_DIR}) ==="
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_knn_throughput
    # Exits 2 if indexed rankings diverge from brute force, 1 if the
    # indexed path is slower; either fails the check via errexit.
    "${BUILD_DIR}/bench/bench_knn_throughput" --quick --out=BENCH_knn.json
    continue
  fi
  if [[ "${STAGE}" == "serve" ]]; then
    BUILD_DIR="build-perf"
    echo "=== serve smoke: bench_serving_load + qatk_serve drain (build: ${BUILD_DIR}) ==="
    cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_serving_load qatk_serve
    # In-process gates: bit-identical wire responses over every held-out
    # bundle, deterministic shedding, zero-drop drain, fault schedules.
    "${BUILD_DIR}/bench/bench_serving_load" --quick --out=BENCH_serving.json
    # Cross-process: a real qatk_serve (independent training of the same
    # deterministic corpus), the bench replayed over TCP, SIGTERM drain.
    PORT_FILE="$(mktemp)"
    rm -f "${PORT_FILE}"
    "${BUILD_DIR}/src/server/qatk_serve" --port=0 --port-file="${PORT_FILE}" &
    SERVE_PID=$!
    for _ in $(seq 1 600); do
      [[ -f "${PORT_FILE}" ]] && break
      sleep 0.5
    done
    if [[ ! -f "${PORT_FILE}" ]]; then
      echo "qatk_serve never wrote its port file" >&2
      kill -9 "${SERVE_PID}" 2>/dev/null || true
      exit 1
    fi
    PORT="$(cat "${PORT_FILE}")"
    rm -f "${PORT_FILE}"
    "${BUILD_DIR}/bench/bench_serving_load" --quick --connect="${PORT}" \
      --out=/dev/null
    kill -TERM "${SERVE_PID}"
    # The graceful drain must finish all in-flight work and exit 0.
    wait "${SERVE_PID}"
    continue
  fi
  # A comma-separated sanitizer list is a valid -fsanitize= value but not a
  # valid directory name; flatten it for the build tree.
  BUILD_DIR="build-san/${STAGE//,/+}"
  echo "=== sanitizer pass: ${STAGE} (build: ${BUILD_DIR}) ==="
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DQATK_SANITIZE="${STAGE}" >/dev/null
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
done

echo "=== all check stages clean ==="
